module Retry = Dsig_util.Retry
module Rtt = Dsig_util.Rtt
module Pacer = Dsig_util.Pacer
module Rng = Dsig_util.Rng

(* One (batch, destination) pair awaiting an ACK. [retry] drives
   scheduling in fixed mode; [next_due_us] drives it in adaptive mode.
   The transmission stamps feed RTT samples and spurious-resend
   detection in both modes. *)
type wait = {
  mutable retry : Retry.state option; (* Some only in fixed mode *)
  mutable next_due_us : float; (* adaptive-mode timer *)
  mutable attempts : int; (* re-sends so far (0 = only the original) *)
  mutable first_send_us : float;
  mutable last_send_us : float;
}

type entry = {
  ann : Batch.announcement;
  waiting : (int, wait) Hashtbl.t; (* dest -> wait *)
}

(* Per-destination link state (kept across batches): the RTO estimator,
   the smallest clean round trip ever observed — the floor used to flag
   re-sends that an already-in-flight ACK made redundant — and the last
   back-pressure level the destination advertised (Batch.Credit), which
   decays after a few round trips unless refreshed. *)
type dest_state = {
  mutable est : Rtt.t;
  mutable min_rtt_us : float;
  mutable pressure : int; (* 0..255; 0 = unloaded *)
  mutable pressure_until_us : float;
}

type mode = Fixed | Adaptive of Options.adaptive

type t = {
  policy : Retry.policy;
  mode : mode;
  bucket : Pacer.t option; (* adaptive only *)
  retain : int;
  rng : Rng.t;
  clock : unit -> float;
  entries : (int64, entry) Hashtbl.t;
  order : int64 Queue.t; (* FIFO retention *)
  dests : (int, dest_state) Hashtbl.t;
  mutable acked : int;
  mutable gave_up : int;
  mutable redundant : int;
  mutable samples : int;
  mutable dropped : int;
}

let create ?(policy = Retry.default) ?(pacing = Options.Fixed) ?(retain = 64) ~rng ~clock () =
  if retain <= 0 then invalid_arg "Announce.create: retain must be positive";
  let mode, bucket =
    match pacing with
    | Options.Fixed -> (Fixed, None)
    | Options.Adaptive a ->
        ( Adaptive a,
          Some (Pacer.create ~burst:a.Options.burst ~rate_per_sec:a.Options.rate_per_sec ~now:(clock ()) ()) )
  in
  {
    policy;
    mode;
    bucket;
    retain;
    rng;
    clock;
    entries = Hashtbl.create 16;
    order = Queue.create ();
    dests = Hashtbl.create 8;
    acked = 0;
    gave_up = 0;
    redundant = 0;
    samples = 0;
    dropped = 0;
  }

let adaptive t = match t.mode with Adaptive _ -> true | Fixed -> false

let dest_state t dest =
  match Hashtbl.find_opt t.dests dest with
  | Some s -> s
  | None ->
      let params = match t.mode with Adaptive a -> a.Options.rtt | Fixed -> Rtt.default in
      let s =
        { est = Rtt.init params; min_rtt_us = infinity; pressure = 0; pressure_until_us = 0.0 }
      in
      Hashtbl.add t.dests dest s;
      s

let rtt_params t = match t.mode with Adaptive a -> a.Options.rtt | Fixed -> Rtt.default

(* Back-pressure from the destination's admission controller. A level
   sticks for a few round trips (it is refreshed by every Credit frame
   while ACK traffic flows) and then decays to zero, so a verifier that
   went quiet — crashed, partitioned — does not stay "loaded" forever. *)
let pressure_ttl_rtos = 4.0

let note_pressure t ~dest ~pressure =
  let ds = dest_state t dest in
  let now = t.clock () in
  ds.pressure <- max 0 (min 255 pressure);
  ds.pressure_until_us <- now +. (pressure_ttl_rtos *. Rtt.rto_us (rtt_params t) ds.est)

let live_pressure ds ~now = if now < ds.pressure_until_us then ds.pressure else 0

let pressure_level t ~dest =
  match Hashtbl.find_opt t.dests dest with
  | None -> 0
  | Some ds -> live_pressure ds ~now:(t.clock ())

(* A loaded destination's re-announce interval stretches by up to 4x at
   full pressure (255) — enough to halve-and-halve-again the probe rate
   into a shedding verifier, while per-destination round-robin in
   [due_adaptive] keeps other destinations served at full rate. *)
let pressure_factor ds ~now = 1.0 +. (3.0 *. float_of_int (live_pressure ds ~now) /. 255.0)

let track t (ann : Batch.announcement) ~dests =
  let now = t.clock () in
  let waiting = Hashtbl.create (List.length dests) in
  List.iter
    (fun dest ->
      let retry, next_due =
        match t.mode with
        | Fixed -> (Some (Retry.start t.policy ~rng:t.rng ~now), infinity)
        | Adaptive _ ->
            let ds = dest_state t dest in
            (None, now +. (pressure_factor ds ~now *. Rtt.rto_us (rtt_params t) ds.est))
      in
      Hashtbl.replace waiting dest
        { retry; next_due_us = next_due; attempts = 0; first_send_us = now; last_send_us = now })
    dests;
  let batch_id = ann.Batch.ann_batch_id in
  if not (Hashtbl.mem t.entries batch_id) then Queue.add batch_id t.order;
  Hashtbl.replace t.entries batch_id { ann; waiting };
  while Queue.length t.order > t.retain do
    let victim = Queue.pop t.order in
    (match Hashtbl.find_opt t.entries victim with
    | Some e -> t.gave_up <- t.gave_up + Hashtbl.length e.waiting
    | None -> ());
    Hashtbl.remove t.entries victim
  done

type ack_outcome = {
  settled : bool;
  redundant : bool;
  rtt_sample_us : float option;
  rto_us : float option;
}

let no_ack = { settled = false; redundant = false; rtt_sample_us = None; rto_us = None }

(* A re-send was redundant when the ACK lands closer to it than any
   clean round trip ever observed on that link: the acknowledgement must
   already have been in flight (it answers an earlier copy). *)
let redundancy_floor = 0.75

let ack t ~verifier ~batch_id =
  match Hashtbl.find_opt t.entries batch_id with
  | None -> no_ack
  | Some e -> (
      match Hashtbl.find_opt e.waiting verifier with
      | None -> no_ack
      | Some w ->
          let now = t.clock () in
          Hashtbl.remove e.waiting verifier;
          t.acked <- t.acked + 1;
          let ds = dest_state t verifier in
          let redundant =
            w.attempts > 0
            && ds.min_rtt_us < infinity
            && now -. w.last_send_us < redundancy_floor *. ds.min_rtt_us
          in
          if redundant then t.redundant <- t.redundant + 1;
          (* the first-transmission round trip bounds the link RTT from
             above; exact when the original copy was the one ACKed *)
          ds.min_rtt_us <- Float.min ds.min_rtt_us (now -. w.first_send_us);
          (* Karn's rule: the estimator only sees unambiguous samples
             (no retransmission in between) *)
          let sample =
            if w.attempts = 0 then begin
              let rtt = now -. w.last_send_us in
              ds.est <- Rtt.sample (rtt_params t) ds.est ~rtt_us:rtt;
              t.samples <- t.samples + 1;
              Some rtt
            end
            else None
          in
          {
            settled = true;
            redundant;
            rtt_sample_us = sample;
            rto_us = Some (Rtt.rto_us (rtt_params t) ds.est);
          })

let lookup t ~batch_id =
  Option.map (fun e -> e.ann) (Hashtbl.find_opt t.entries batch_id)

(* A revoked or rotated-out batch must stop consuming pacing tokens the
   moment it dies: its pending transmissions are dropped outright (not
   counted as gave-up — nobody is waiting for them anymore). The entry
   itself stays retained so pull repair keeps serving previously issued
   signatures. *)
let drop t ~batch_id =
  match Hashtbl.find_opt t.entries batch_id with
  | None -> 0
  | Some e ->
      let n = Hashtbl.length e.waiting in
      Hashtbl.reset e.waiting;
      t.dropped <- t.dropped + n;
      n

let drop_before t ~batch_id =
  Hashtbl.fold
    (fun id e acc ->
      if Int64.compare id batch_id < 0 && Hashtbl.length e.waiting > 0 then
        acc + drop t ~batch_id:id
      else acc)
    t.entries 0

let due_fixed t ~now =
  let out = ref [] in
  Hashtbl.iter
    (fun _ e ->
      let expired =
        Hashtbl.fold
          (fun dest w acc ->
            match w.retry with
            | Some st when Retry.due st ~now -> (dest, w, st) :: acc
            | Some _ | None -> acc)
          e.waiting []
      in
      List.iter
        (fun (dest, w, st) ->
          match Retry.next t.policy ~rng:t.rng st ~now with
          | Some st' ->
              w.retry <- Some st';
              w.attempts <- w.attempts + 1;
              w.last_send_us <- now;
              out := (dest, e.ann) :: !out
          | None ->
              Hashtbl.remove e.waiting dest;
              t.gave_up <- t.gave_up + 1)
        expired)
    t.entries;
  !out

let due_adaptive t (a : Options.adaptive) ~now =
  (* collect expired timers, bucketed per destination so the token
     budget is spread round-robin across links instead of draining into
     whichever batch iterates first *)
  let by_dest : (int, (entry * wait) Queue.t) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ e ->
      let expired =
        Hashtbl.fold (fun dest w acc -> if now >= w.next_due_us then (dest, w) :: acc else acc)
          e.waiting []
      in
      List.iter
        (fun (dest, w) ->
          if a.Options.max_attempts > 0 && w.attempts >= a.Options.max_attempts then begin
            Hashtbl.remove e.waiting dest;
            t.gave_up <- t.gave_up + 1
          end
          else begin
            let q =
              match Hashtbl.find_opt by_dest dest with
              | Some q -> q
              | None ->
                  let q = Queue.create () in
                  Hashtbl.add by_dest dest q;
                  q
            in
            Queue.add (e, w) q
          end)
        expired)
    t.entries;
  let dests_order = Hashtbl.fold (fun d _ acc -> d :: acc) by_dest [] |> List.sort compare in
  let bucket = Option.get t.bucket in
  let backed_off = Hashtbl.create 8 in
  let out = ref [] in
  let exhausted = ref false in
  let progress = ref true in
  (* round-robin: one item per destination per lap, while tokens last *)
  while (not !exhausted) && !progress do
    progress := false;
    List.iter
      (fun dest ->
        if not !exhausted then
          let q = Hashtbl.find by_dest dest in
          if not (Queue.is_empty q) then begin
            if Pacer.take bucket ~now then begin
              let e, w = Queue.pop q in
              let ds = dest_state t dest in
              (* one multiplicative backoff per destination per poll:
                 simultaneous expiries are one loss signal, not many *)
              if not (Hashtbl.mem backed_off dest) then begin
                ds.est <- Rtt.on_timeout a.Options.rtt ds.est;
                Hashtbl.add backed_off dest ()
              end;
              w.attempts <- w.attempts + 1;
              w.last_send_us <- now;
              w.next_due_us <-
                now +. (pressure_factor ds ~now *. Rtt.rto_us a.Options.rtt ds.est);
              out := (dest, e.ann) :: !out;
              progress := true
            end
            else exhausted := true
          end)
      dests_order
  done;
  !out

let due ?now t =
  let now = match now with Some n -> n | None -> t.clock () in
  match t.mode with Fixed -> due_fixed t ~now | Adaptive a -> due_adaptive t a ~now

let pending t = Hashtbl.fold (fun _ e acc -> acc + Hashtbl.length e.waiting) t.entries 0

let pending_for t ~batch_id =
  match Hashtbl.find_opt t.entries batch_id with
  | None -> None
  | Some e -> Some (Hashtbl.length e.waiting)

let batches t = Hashtbl.length t.entries
let acked t = t.acked
let gave_up t = t.gave_up
let redundant (t : t) = t.redundant
let samples t = t.samples
let dropped t = t.dropped

let srtt_us t ~dest =
  Option.bind (Hashtbl.find_opt t.dests dest) (fun ds -> Rtt.srtt_us ds.est)

let rto_us t ~dest =
  Option.map (fun ds -> Rtt.rto_us (rtt_params t) ds.est) (Hashtbl.find_opt t.dests dest)
