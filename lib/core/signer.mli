(** The DSig signer — Algorithm 1 of the paper.

    The signer is configured with {e verifier groups}: sets of processes
    likely to verify the same signatures. Each group has a queue of
    prepared one-time keys; the {e background plane}
    ({!background_step}) refills queues below the threshold S by
    generating an EdDSA-signed batch of keys and multicasting its
    announcement to the group, while the {e foreground plane} ({!sign})
    pops a prepared key, produces the HBSS signature and attaches the
    precomputed Merkle proof and root signature — no EdDSA work on the
    critical path.

    The background plane is driven explicitly (by a dedicated simnet
    process, a loop thread, or interleaved calls), keeping the library
    free of any runtime dependency. *)

type t

val create :
  Config.t ->
  id:int ->
  eddsa:Dsig_ed25519.Eddsa.secret_key ->
  rng:Dsig_util.Rng.t ->
  ?send:(dest:int -> Batch.announcement -> unit) ->
  ?groups:int list list ->
  ?options:Options.t ->
  verifiers:int list ->
  unit ->
  t
(** [verifiers] is the set of all known processes (the default group).
    [groups] adds application-specific verifier groups (Alg. 1 line 2).
    [send] delivers background announcements (batch refills and staged
    rotations); it defaults to a no-op (useful when announcements are
    collected via {!drain_outbox}). The {!Control_plane.S} surface
    never sends — it returns what to send.

    [options] (default {!Options.default}) supplies the telemetry
    bundle, the fixed-mode re-announce policy, the retention bound, and
    the {!Options.pacing} mode (see {!Announce} and DESIGN.md §9).

    When [options] carries a store ({!Options.with_store}), the signer
    opens a durable {!Dsig_store.Keystate} journal under the store
    directory: every batch is journaled when sealed and every one-time
    key when reserved — {e before} the signature is built — and the
    batch counter resumes past anything a previous incarnation might
    have used, so a restart can never reuse a one-time key (DESIGN.md
    §10). The journal is checked against {!Config.fingerprint}; a store
    that cannot be opened or belongs to a different configuration
    raises [Failure].

    The telemetry bundle receives [dsig_signer_signatures_total] /
    [dsig_signer_sync_refills_total] / [dsig_signer_batches_total]
    counters, the announcement-reliability counters
    [dsig_signer_reannounces_total] / [dsig_signer_acks_total]
    / [dsig_signer_batch_requests_total] /
    [dsig_signer_announce_giveups_total] /
    [dsig_reannounce_redundant_total] and the
    [dsig_signer_unacked_announcements] gauge, the pacing gauges
    [dsig_rtt_us] / [dsig_rto_us] (latest observation, plus
    per-destination [.._dest_<id>] series), [dsig_signer_sign_us] and
    [dsig_signer_refill_us] latency histograms, the process-wide
    [dsig_signer_queue_depth] gauge (prepared keys across all groups and
    signers sharing the handle), the key-lifecycle series
    ([dsig_rotation_staged_total] / [dsig_rotation_cutovers_total] /
    [dsig_rotation_dropped_keys_total] counters, the
    [dsig_rotation_cutover_us] histogram and the [dsig_rotation_epoch]
    gauge), and — when the tracer is enabled — [sign_fast] /
    [sign_sync_refill] / [batch_gen] / [eddsa_sign] / [reannounce]
    spans tagged with the signer id. *)

val id : t -> int
val config : t -> Config.t
val eddsa_public_key : t -> Dsig_ed25519.Eddsa.public_key

val store : t -> Dsig_store.Keystate.t option
(** The durable key-state journal, when the signer was created with
    {!Options.with_store}. *)

val store_recovery : t -> Dsig_store.Keystate.report option
(** What recovery found when the store was opened: whether the previous
    incarnation shut down cleanly, what was burned, and the resumed
    batch counter. *)

val close : t -> unit
(** Write the store's clean-shutdown marker and close it (no burned keys
    on the next open). A no-op without a store; idempotent. *)

val sign : t -> ?hint:int list -> string -> string
(** [sign t ~hint msg] returns the encoded DSig signature. The hint
    selects the smallest group containing it (Alg. 1 line 15); an
    omitted or unmatched hint falls back to the default group. If the
    chosen queue is empty the signer refills it synchronously (slow
    path, counted in {!stats}).

    When the bundle's {!Dsig_telemetry.Lifecycle} is enabled, every
    signature also registers a lifecycle sign event under its trace id
    (one mutable load when disabled). *)

val sign_ctx : t -> ?hint:int list -> string -> string * Dsig_telemetry.Trace_ctx.t
(** Like {!sign}, additionally returning the signature's trace context
    (for transports that propagate it, e.g. [Dsig_tcpnet]'s [Traced]
    frames). *)

val sign_many : t -> ?hint:int list -> string array -> string array
(** Sign a batch of messages, returning wire signatures in input order.
    With {!Options.with_parallel}, the calling domain pops the prepared
    keys, journals every key reservation in consumption order and
    pre-draws the nonces; signature bodies and wire encodings are then
    built on worker domains over contiguous key-index ranges (one range
    per shard — no two domains ever touch the same one-time key), and
    all accounting (translog, stats, metrics, lifecycle) folds back on
    the calling domain. Without a pool this is a plain loop over
    {!sign}. The signer itself stays single-domain: concurrent calls to
    [sign]/[sign_many] on one signer are not supported — the pool
    parallelizes {e within} a call. *)

val background_step : t -> bool
(** Refill at most one group whose queue is below S with one batch
    (Alg. 1 lines 6-11). Returns [true] if work was done. *)

val background_fill : t -> unit
(** Run {!background_step} to quiescence. *)

val queue_length : t -> int list -> int
(** Prepared keys available for the group matching the given hint. *)

(** {1 Zero-downtime rotation (key lifecycle plane)}

    Rotation pre-generates the next-generation batch while the current
    one keeps serving, then cuts over atomically. The protocol is
    propose -> confirm, journaled in the {!Dsig_store.Keystate} store
    when one is configured: a crash at any point between
    {!stage_next_batch} and {!cutover} recovers by retiring the staged
    batch, so exactly one generation is ever live and no one-time key
    is reused. A coordinator ({!Dsig_keylife.Rotation}) typically
    drives the pair; both entry points are also safe to call directly.
    Rotation targets the default group — with extra groups configured,
    cutover discards {e every} group's queued keys (the whole old
    generation retires). *)

val stage_next_batch : t -> int * int64
(** Generate, journal (propose, then seal) and announce the
    next-generation batch without serving from it. Returns
    [(epoch, batch_id)] of the staged generation.
    @raise Invalid_argument if a rotation is already staged. *)

val staged_rotation : t -> (int * int64) option
(** The staged [(epoch, batch_id)], if a rotation is in flight. *)

val staged_unacked : t -> int option
(** Destinations that have not yet acknowledged the staged batch's
    announcement; [None] when no rotation is staged. *)

val cutover : t -> int
(** Atomically cut over to the staged generation: journal (and sync)
    the confirm record, stop re-announcing the dying batches
    ({!Announce.drop}), discard their queued keys, and start serving
    the staged keys. Returns the new epoch. The signer also cuts over
    implicitly if the default queue drains while a rotation is staged,
    so signing availability never waits on the coordinator.
    @raise Invalid_argument if no rotation is staged. *)

val epoch : t -> int
(** The confirmed rotation epoch (0 until the first cutover). *)

type stats = {
  mutable signatures : int;
  mutable batches : int;
  mutable sync_refills : int;  (** foreground had to generate keys *)
  mutable reannounces : int;  (** unACKed announcements re-sent *)
  mutable requests_served : int;  (** pull requests answered *)
}

val stats : t -> stats

val drain_outbox : t -> (int * Batch.announcement) list
(** Announcements queued when no [send] callback was given, as
    [(destination, announcement)] pairs, oldest first. *)

(** {1 Announcement control plane}

    The signer implements {!Control_plane.S}: announcements are
    fire-and-forget at the transport level, and these three entry points
    close the loop. Feed inbound control messages through
    {!Control_plane.deliver} (or the typed entry points below) and drive
    {!step} from the background plane alongside {!background_step} —
    both return what to send rather than sending, so any transport can
    drive a signer. *)

val deliver_ack : t -> Batch.ack -> unit
(** Record a verifier's acknowledgement of a batch announcement. ACKs
    for other signers, unknown batches, or already-acknowledged
    destinations are ignored (idempotent). Feeds the destination's RTT
    estimator and the pacing telemetry ([dsig_rtt_us] / [dsig_rto_us] /
    [dsig_reannounce_redundant_total]). *)

val deliver_request : t -> Batch.request -> Batch.announcement option
(** The retained announcement to re-send to the requesting verifier
    (pull repair), or [None] if the batch is no longer retained or the
    request names another signer. The caller sends the reply. *)

val note_pressure : t -> verifier:int -> pressure:int -> unit
(** Record the back-pressure byte [verifier] piggybacked on a
    [Batch.Credit] frame: under adaptive pacing that destination's
    re-announce interval stretches (up to 4x at 255) until the level
    decays or a lower one arrives (see {!Announce.note_pressure}).
    Mirrors the latest level into the [dsig_signer_peer_pressure]
    gauge. *)

val step : t -> now:float -> (int * Batch.announcement) list
(** Re-announcements due at [now] (in the telemetry clock's time base),
    as [(destination, announcement)] pairs the caller must send.
    Advances backoff/RTO timers, counts each pair in
    [dsig_signer_reannounces_total], and abandons destinations that
    exhaust the budget ([dsig_signer_announce_giveups_total]). Under
    adaptive pacing the list is bounded by the token bucket. *)

val unacked_announcements : t -> int
(** Outstanding (batch, destination) pairs still awaiting an ACK. *)
