(** The DSig signer — Algorithm 1 of the paper.

    The signer is configured with {e verifier groups}: sets of processes
    likely to verify the same signatures. Each group has a queue of
    prepared one-time keys; the {e background plane}
    ({!background_step}) refills queues below the threshold S by
    generating an EdDSA-signed batch of keys and multicasting its
    announcement to the group, while the {e foreground plane} ({!sign})
    pops a prepared key, produces the HBSS signature and attaches the
    precomputed Merkle proof and root signature — no EdDSA work on the
    critical path.

    The background plane is driven explicitly (by a dedicated simnet
    process, a loop thread, or interleaved calls), keeping the library
    free of any runtime dependency. *)

type t

val create :
  Config.t ->
  id:int ->
  eddsa:Dsig_ed25519.Eddsa.secret_key ->
  rng:Dsig_util.Rng.t ->
  ?send:(dest:int -> Batch.announcement -> unit) ->
  ?groups:int list list ->
  ?telemetry:Dsig_telemetry.Telemetry.t ->
  verifiers:int list ->
  unit ->
  t
(** [verifiers] is the set of all known processes (the default group).
    [groups] adds application-specific verifier groups (Alg. 1 line 2).
    [send] delivers background announcements; it defaults to a no-op
    (useful when announcements are collected via {!drain_outbox}).

    [telemetry] (default {!Dsig_telemetry.Telemetry.default}) receives
    [dsig_signer_signatures_total] / [dsig_signer_sync_refills_total] /
    [dsig_signer_batches_total] counters, [dsig_signer_sign_us] and
    [dsig_signer_refill_us] latency histograms, the process-wide
    [dsig_signer_queue_depth] gauge (prepared keys across all groups and
    signers sharing the handle), and — when the tracer is enabled —
    [sign_fast] / [sign_sync_refill] / [batch_gen] / [eddsa_sign] spans
    tagged with the signer id. *)

val id : t -> int
val config : t -> Config.t
val eddsa_public_key : t -> Dsig_ed25519.Eddsa.public_key

val sign : t -> ?hint:int list -> string -> string
(** [sign t ~hint msg] returns the encoded DSig signature. The hint
    selects the smallest group containing it (Alg. 1 line 15); an
    omitted or unmatched hint falls back to the default group. If the
    chosen queue is empty the signer refills it synchronously (slow
    path, counted in {!stats}). *)

val background_step : t -> bool
(** Refill at most one group whose queue is below S with one batch
    (Alg. 1 lines 6-11). Returns [true] if work was done. *)

val background_fill : t -> unit
(** Run {!background_step} to quiescence. *)

val queue_length : t -> int list -> int
(** Prepared keys available for the group matching the given hint. *)

type stats = {
  mutable signatures : int;
  mutable batches : int;
  mutable sync_refills : int;  (** foreground had to generate keys *)
}

val stats : t -> stats

val drain_outbox : t -> (int * Batch.announcement) list
(** Announcements queued when no [send] callback was given, as
    [(destination, announcement)] pairs, oldest first. *)
