(** A real two-plane DSig signer: the background plane runs on its own
    {!Domain} (the paper dedicates one CPU core to it, §8 "DSig
    configuration"), generating and EdDSA-signing key batches while the
    foreground thread signs with zero asymmetric crypto on its critical
    path.

    The planes communicate through a mutex-protected key queue with the
    paper's threshold semantics: the background domain refills whenever
    the queue drops below S and sleeps otherwise; {!sign} blocks only if
    the queue is completely empty (the synchronous-refill situation the
    in-simulation {!Signer} counts as a slow path).

    Announcements are buffered for the embedding application to
    distribute to verifiers ({!drain_announcements}). *)

type t

val create :
  Config.t ->
  id:int ->
  eddsa:Dsig_ed25519.Eddsa.secret_key ->
  seed:int64 ->
  ?options:Options.t ->
  unit ->
  t
(** Spawns the background domain. Call {!shutdown} when done.

    [options] (default {!Options.default}) supplies the telemetry
    bundle, the fixed-mode re-announce policy, the retention bound, and
    the {!Options.pacing} mode for announcement ACK tracking — see
    {!track_announcement} and DESIGN.md §9.

    When [options] carries a store ({!Options.with_store}), the runtime
    opens a durable {!Dsig_store.Keystate} journal: the background
    domain journals each batch before its keys are queued, the
    foreground thread journals each reservation before building the
    signature, and the batch counter resumes past anything a previous
    incarnation might have used (DESIGN.md §10). {!shutdown} closes the
    journal cleanly. Raises [Failure] if the store cannot be opened or
    belongs to a different {!Config.fingerprint}.

    The telemetry bundle receives the foreground plane's
    [dsig_runtime_signatures_total] / [dsig_runtime_sign_waits_total]
    counters, the reliability counters [dsig_runtime_reannounces_total]
    (pairs returned by {!step}) and [dsig_runtime_acks_total] (ACKs that
    newly settled a destination), the pacing series [dsig_rtt_us] /
    [dsig_rto_us] gauges (latest observation, plus per-destination
    [.._dest_<id>] series) and the [dsig_reannounce_redundant_total]
    counter, [dsig_runtime_sign_us] histogram and
    [dsig_runtime_queue_depth] gauge, and the background domain's
    [dsig_runtime_batches_total] counter and
    [dsig_runtime_batch_gen_us] histogram. The planes write to separate
    per-domain metric cells ({!Dsig_telemetry.Registry}), so the
    background domain never slows the foreground signer; snapshots merge
    both. *)

val sign : t -> string -> string
(** Foreground-plane signing; thread-safe for a single foreground
    caller. Blocks (briefly, after warm-up never) when no key is ready.
    Registers a lifecycle sign event when the bundle's
    {!Dsig_telemetry.Lifecycle} is enabled (one mutable load when not). *)

val sign_ctx : t -> string -> string * Dsig_telemetry.Trace_ctx.t
(** Like {!sign}, additionally returning the signature's trace context
    for transports that propagate it (e.g. [Dsig_tcpnet.Traced]). *)

val queue_depth : t -> int
val batches_generated : t -> int

val store : t -> Dsig_store.Keystate.t option
(** The durable key-state journal, when created with
    {!Options.with_store}. *)

val store_recovery : t -> Dsig_store.Keystate.report option
(** What recovery found at creation (clean/crash, burned keys, resumed
    batch counter). *)

val drain_announcements : t -> Batch.announcement list
(** Announcements produced since the last drain, oldest first. *)

(** {1 Announcement control plane}

    The runtime implements {!Control_plane.S}. It hands announcements to
    the embedding application ({!drain_announcements}) rather than
    sending them itself, so the reliability loop is split: after
    distributing an announcement, the application registers the
    destinations with {!track_announcement}; inbound {!Batch.ack} /
    {!Batch.request} frames go to {!deliver_ack} / {!deliver_request}
    (or {!Control_plane.deliver}); and a periodic {!step} poll yields
    the [(destination, announcement)] pairs to re-send. All entry points
    are thread-safe. *)

val track_announcement : t -> Batch.announcement -> dests:int list -> unit

val deliver_ack : t -> Batch.ack -> unit
(** Record a verifier's acknowledgement; idempotent. Feeds the
    destination's RTT estimator and the pacing telemetry. *)

val deliver_request : t -> Batch.request -> Batch.announcement option
(** The retained announcement to re-send to the requesting verifier, or
    [None] if the batch is no longer retained or names another signer.
    The caller sends the reply. *)

val note_pressure : t -> verifier:int -> pressure:int -> unit
(** Record the back-pressure byte [verifier] piggybacked on a
    [Batch.Credit] frame; see {!Signer.note_pressure}. Thread-safe. *)

val step : t -> now:float -> (int * Batch.announcement) list
(** Re-announcements due at [now] (in the telemetry clock's time base);
    consuming the list advances each destination's backoff/RTO. Under
    adaptive pacing the list is bounded by the token bucket. *)

val unacked_announcements : t -> int

val shutdown : t -> unit
(** Stops and joins the background domain, then closes the key-state
    journal (clean-shutdown marker). Idempotent. *)
