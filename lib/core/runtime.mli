(** A real two-plane DSig signer: the background plane runs on its own
    {!Domain} (the paper dedicates one CPU core to it, §8 "DSig
    configuration"), generating and EdDSA-signing key batches while the
    foreground thread signs with zero asymmetric crypto on its critical
    path.

    The planes communicate through a mutex-protected key queue with the
    paper's threshold semantics: the background domain refills whenever
    the queue drops below S and sleeps otherwise; {!sign} blocks only if
    the queue is completely empty (the synchronous-refill situation the
    in-simulation {!Signer} counts as a slow path).

    Announcements are buffered for the embedding application to
    distribute to verifiers ({!drain_announcements}). *)

type t

val create :
  Config.t ->
  id:int ->
  eddsa:Dsig_ed25519.Eddsa.secret_key ->
  seed:int64 ->
  ?telemetry:Dsig_telemetry.Telemetry.t ->
  ?retry:Dsig_util.Retry.policy ->
  ?retain:int ->
  unit ->
  t
(** Spawns the background domain. Call {!shutdown} when done.

    [retry] (default {!Dsig_util.Retry.default}) and [retain] (default
    64) configure announcement ACK tracking — see
    {!track_announcement}.

    [telemetry] (default {!Dsig_telemetry.Telemetry.default}) receives
    the foreground plane's [dsig_runtime_signatures_total] /
    [dsig_runtime_sign_waits_total] counters, the reliability counters
    [dsig_runtime_reannounces_total] (pairs returned by
    {!due_reannouncements}) and [dsig_runtime_acks_total] (ACKs that
    newly settled a destination), [dsig_runtime_sign_us]
    histogram and [dsig_runtime_queue_depth] gauge, and the background
    domain's [dsig_runtime_batches_total] counter and
    [dsig_runtime_batch_gen_us] histogram. The planes write to separate
    per-domain metric cells ({!Dsig_telemetry.Registry}), so the
    background domain never slows the foreground signer; snapshots merge
    both. *)

val sign : t -> string -> string
(** Foreground-plane signing; thread-safe for a single foreground
    caller. Blocks (briefly, after warm-up never) when no key is ready.
    Registers a lifecycle sign event when the bundle's
    {!Dsig_telemetry.Lifecycle} is enabled (one mutable load when not). *)

val sign_ctx : t -> string -> string * Dsig_telemetry.Trace_ctx.t
(** Like {!sign}, additionally returning the signature's trace context
    for transports that propagate it (e.g. [Dsig_tcpnet.Traced]). *)

val queue_depth : t -> int
val batches_generated : t -> int

val drain_announcements : t -> Batch.announcement list
(** Announcements produced since the last drain, oldest first. *)

(** {1 Announcement reliability}

    The runtime hands announcements to the embedding application
    ({!drain_announcements}) rather than sending them itself, so the
    reliability loop is split: after distributing an announcement, the
    application registers the destinations with {!track_announcement};
    inbound {!Batch.ack} / {!Batch.request} frames go to {!handle_ack} /
    {!handle_request}; and a periodic {!due_reannouncements} poll yields
    the [(destination, announcement)] pairs to re-send. All entry points
    are thread-safe. *)

val track_announcement : t -> Batch.announcement -> dests:int list -> unit
val handle_ack : t -> Batch.ack -> unit

val handle_request : t -> Batch.request -> Batch.announcement option
(** The retained announcement to re-send to the requesting verifier, or
    [None] if the batch is no longer retained or names another signer. *)

val due_reannouncements : t -> (int * Batch.announcement) list
(** Destinations whose re-announcement backoff expired; consuming the
    list advances each destination's backoff. *)

val unacked_announcements : t -> int

val shutdown : t -> unit
(** Stops and joins the background domain. Idempotent. *)
