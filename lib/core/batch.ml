module Merkle = Dsig_merkle.Merkle
module Eddsa = Dsig_ed25519.Eddsa
module BU = Dsig_util.Bytesutil
module Tel = Dsig_telemetry.Telemetry
module Tracer = Dsig_telemetry.Tracer
module Metric = Dsig_telemetry.Metric

type t = {
  signer_id : int;
  batch_id : int64;
  keys : Onetime.t array;
  tree : Merkle.t;
  root_sig : string;
}

let root_message ~signer_id ~batch_id ~root =
  "dsig-batch-root" ^ BU.u64_le (Int64.of_int signer_id) ^ BU.u64_le batch_id ^ root

let make ?(telemetry = Tel.default) ?pool (cfg : Config.t) ~signer_id ~batch_id ~eddsa ~rng =
  let t0 = Tel.now telemetry in
  let n = cfg.Config.batch_size in
  (* seeds are drawn sequentially from the caller's rng before any
     fan-out, so the batch is byte-identical with and without a pool
     (golden wire tests, store replay) and workers never touch the
     non-thread-safe rng *)
  let seeds = Array.init n (fun _ -> Dsig_util.Rng.bytes rng 32) in
  let keys =
    match pool with
    | Some p when n > 1 && Dsig_util.Domain_pool.size p > 1 ->
        Dsig_util.Domain_pool.parallel_map p ~f:(fun ~shard:_ seed -> Onetime.generate cfg ~seed) seeds
    | _ -> Array.map (fun seed -> Onetime.generate cfg ~seed) seeds
  in
  let tree = Merkle.build (Array.map Onetime.batch_leaf keys) in
  let root = Merkle.root tree in
  let t1 = Tel.now telemetry in
  Tracer.record_at telemetry.Tel.tracer ~tag:signer_id Tracer.Eddsa_sign Tracer.Begin t1;
  let root_sig = Eddsa.sign eddsa (root_message ~signer_id ~batch_id ~root) in
  let t2 = Tel.now telemetry in
  Tracer.record_at telemetry.Tel.tracer ~tag:signer_id Tracer.Eddsa_sign Tracer.End t2;
  Metric.Histogram.add (Tel.histogram telemetry "dsig_batch_keygen_us") (t1 -. t0);
  Metric.Histogram.add (Tel.histogram telemetry "dsig_batch_eddsa_sign_us") (t2 -. t1);
  Metric.Counter.incr (Tel.counter telemetry "dsig_batch_generated_total");
  { signer_id; batch_id; keys; tree; root_sig }

let batch_id t = t.batch_id
let root t = Merkle.root t.tree
let root_signature t = t.root_sig
let size t = Array.length t.keys
let key t i = t.keys.(i)
let proof t i = Merkle.proof t.tree i
let leaves t = Array.map Onetime.batch_leaf t.keys

type announcement = {
  signer_id : int;
  ann_batch_id : int64;
  root_sig : string;
  ann_leaves : string array;
  full_keys : (string * string array) array option;
}

let announcement (cfg : Config.t) t =
  let full_keys =
    if cfg.Config.reduce_bg_bandwidth then None
    else
      Some
        (Array.map
           (fun k -> (Onetime.public_seed k, Onetime.public_elements k))
           t.keys)
  in
  {
    signer_id = t.signer_id;
    ann_batch_id = t.batch_id;
    root_sig = t.root_sig;
    ann_leaves = leaves t;
    full_keys;
  }

(* Modeled wire size: 8 (signer) + 8 (batch id) + 64 (EdDSA) plus, per
   key, either a 32-byte digest or the full public key with its seed.
   With the recommended configuration this is (128*32 + 80) / 128 =
   32.6 B per signature plus the recipient count — the ~33 B/sig
   "Bg Net" column of Table 1. *)
let announcement_wire_bytes (cfg : Config.t) =
  let per_key =
    if cfg.Config.reduce_bg_bandwidth then 32
    else
      32
      +
      match cfg.Config.hbss with
      | Config.Wots p -> 32 + (p.Dsig_hbss.Params.Wots.l * p.Dsig_hbss.Params.Wots.n)
      | Config.Hors_factorized p | Config.Hors_merklified { params = p; _ } ->
          32 + (p.Dsig_hbss.Params.Hors.t * p.Dsig_hbss.Params.Hors.n)
  in
  8 + 8 + 64 + (cfg.Config.batch_size * per_key)

(* Announcement wire format:
   magic 'A' | signer u64 | batch u64 | root_sig (64) | nleaves u32 |
   leaves (32 each) | has_full (1) | per key: seed (32) | nelems u32 |
   elem_len u32 | elements. *)
let encode_announcement a =
  let buf = Buffer.create 4096 in
  Buffer.add_char buf 'A';
  Buffer.add_string buf (BU.u64_le (Int64.of_int a.signer_id));
  Buffer.add_string buf (BU.u64_le a.ann_batch_id);
  Buffer.add_string buf a.root_sig;
  Buffer.add_string buf (BU.u32_le (Int32.of_int (Array.length a.ann_leaves)));
  Array.iter (Buffer.add_string buf) a.ann_leaves;
  (match a.full_keys with
  | None -> Buffer.add_char buf '\x00'
  | Some keys ->
      Buffer.add_char buf '\x01';
      Array.iter
        (fun (seed, elements) ->
          Buffer.add_string buf seed;
          Buffer.add_string buf (BU.u32_le (Int32.of_int (Array.length elements)));
          let elem_len = if Array.length elements = 0 then 0 else String.length elements.(0) in
          Buffer.add_string buf (BU.u32_le (Int32.of_int elem_len));
          Array.iter (Buffer.add_string buf) elements)
        keys);
  Buffer.contents buf

(* --- announcement-plane control messages (ACK / pull repair) --- *)

type ack = { ack_verifier : int; ack_signer : int; ack_batch : int64 }
type request = { req_verifier : int; req_signer : int; req_batch : int64 }
type control =
  | Ack of ack
  | Request of request
  | Acks of ack list
  | Credit of { pressure : int; acks : ack list }

let control_wire_bytes = 1 + 8 + 8 + 8
let max_acks_per_frame = 4096

let control_bytes = function
  | Ack _ | Request _ -> control_wire_bytes
  | Acks l -> 1 + 2 + (24 * List.length l)
  | Credit { acks; _ } -> 1 + 1 + 2 + (24 * List.length acks)

let control_target = function
  | Ack a -> Some a.ack_signer
  | Request r -> Some r.req_signer
  | Acks (a :: _) | Credit { acks = a :: _; _ } -> Some a.ack_signer
  | Acks [] | Credit { acks = []; _ } -> None

let encode_ack_fields buf a b d =
  Buffer.add_string buf (BU.u64_le (Int64.of_int a));
  Buffer.add_string buf (BU.u64_le (Int64.of_int b));
  Buffer.add_string buf (BU.u64_le d)

let encode_control c =
  let buf = Buffer.create (control_bytes c) in
  (match c with
  | Ack { ack_verifier; ack_signer; ack_batch } ->
      Buffer.add_char buf 'K';
      encode_ack_fields buf ack_verifier ack_signer ack_batch
  | Request { req_verifier; req_signer; req_batch } ->
      Buffer.add_char buf 'R';
      encode_ack_fields buf req_verifier req_signer req_batch
  | Acks l ->
      Buffer.add_char buf 'M';
      let n = List.length l in
      Buffer.add_char buf (Char.chr (n land 0xFF));
      Buffer.add_char buf (Char.chr ((n lsr 8) land 0xFF));
      List.iter
        (fun { ack_verifier; ack_signer; ack_batch } ->
          encode_ack_fields buf ack_verifier ack_signer ack_batch)
        l
  | Credit { pressure; acks } ->
      (* 'P': like 'M' but with the verifier's back-pressure byte ahead
         of the count, so credit rides the existing ACK wire *)
      Buffer.add_char buf 'P';
      Buffer.add_char buf (Char.chr (max 0 (min 255 pressure)));
      let n = List.length acks in
      Buffer.add_char buf (Char.chr (n land 0xFF));
      Buffer.add_char buf (Char.chr ((n lsr 8) land 0xFF));
      List.iter
        (fun { ack_verifier; ack_signer; ack_batch } ->
          encode_ack_fields buf ack_verifier ack_signer ack_batch)
        acks);
  Buffer.contents buf

let decode_control s =
  let len = String.length s in
  if len < 1 then Error "empty control frame"
  else
    match s.[0] with
    | ('K' | 'R') when len = control_wire_bytes ->
        let verifier = Int64.to_int (BU.get_u64_le s 1) in
        let signer = Int64.to_int (BU.get_u64_le s 9) in
        let batch = BU.get_u64_le s 17 in
        if s.[0] = 'K' then
          Ok (Ack { ack_verifier = verifier; ack_signer = signer; ack_batch = batch })
        else Ok (Request { req_verifier = verifier; req_signer = signer; req_batch = batch })
    | 'K' | 'R' -> Error "bad control size"
    | 'M' ->
        if len < 3 then Error "bad control size"
        else begin
          let n = Char.code s.[1] lor (Char.code s.[2] lsl 8) in
          if n > max_acks_per_frame then Error "oversized ack batch"
          else if len <> 3 + (24 * n) then Error "bad control size"
          else
            Ok
              (Acks
                 (List.init n (fun i ->
                      let off = 3 + (24 * i) in
                      {
                        ack_verifier = Int64.to_int (BU.get_u64_le s off);
                        ack_signer = Int64.to_int (BU.get_u64_le s (off + 8));
                        ack_batch = BU.get_u64_le s (off + 16);
                      })))
        end
    | 'P' ->
        if len < 4 then Error "bad control size"
        else begin
          let pressure = Char.code s.[1] in
          let n = Char.code s.[2] lor (Char.code s.[3] lsl 8) in
          if n > max_acks_per_frame then Error "oversized ack batch"
          else if len <> 4 + (24 * n) then Error "bad control size"
          else
            Ok
              (Credit
                 {
                   pressure;
                   acks =
                     List.init n (fun i ->
                         let off = 4 + (24 * i) in
                         {
                           ack_verifier = Int64.to_int (BU.get_u64_le s off);
                           ack_signer = Int64.to_int (BU.get_u64_le s (off + 8));
                           ack_batch = BU.get_u64_le s (off + 16);
                         });
                 })
        end
    | _ -> Error "bad control tag"

let decode_announcement s =
  let len = String.length s in
  let pos = ref 0 in
  let take n =
    if !pos + n > len then failwith "truncated"
    else begin
      let r = String.sub s !pos n in
      pos := !pos + n;
      r
    end
  in
  try
    if take 1 <> "A" then Error "bad announcement magic"
    else begin
      let signer_id = Int64.to_int (BU.get_u64_le (take 8) 0) in
      let ann_batch_id = BU.get_u64_le (take 8) 0 in
      let root_sig = take 64 in
      let nleaves = Int32.to_int (BU.get_u32_le (take 4) 0) in
      if nleaves < 0 || nleaves > 1 lsl 20 then Error "bad leaf count"
      else begin
        let ann_leaves = Array.init nleaves (fun _ -> take 32) in
        let full_keys =
          match (take 1).[0] with
          | '\x00' -> None
          | '\x01' ->
              Some
                (Array.init nleaves (fun _ ->
                     let seed = take 32 in
                     let nelems = Int32.to_int (BU.get_u32_le (take 4) 0) in
                     let elem_len = Int32.to_int (BU.get_u32_le (take 4) 0) in
                     if nelems < 0 || nelems > 1 lsl 22 || elem_len < 0 || elem_len > 4096 then
                       failwith "bad element header"
                       (* bound the element array by the remaining input
                          before allocating nelems slots *)
                     else if !pos + (nelems * elem_len) > len then failwith "truncated"
                     else (seed, Array.init nelems (fun _ -> take elem_len))))
          | _ -> failwith "bad full-keys flag"
        in
        if !pos <> len then Error "trailing bytes"
        else Ok { signer_id; ann_batch_id; root_sig; ann_leaves; full_keys }
      end
    end
  with Failure e -> Error e
