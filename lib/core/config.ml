open Dsig_hbss

type hbss =
  | Wots of Params.Wots.t
  | Hors_factorized of Params.Hors.t
  | Hors_merklified of { params : Params.Hors.t; trees : int }

type t = {
  hbss : hbss;
  hash : Dsig_hashes.Hash.algo;
  batch_size : int;
  queue_threshold : int;
  cache_batches : int;
  cache_chains : bool;
  reduce_bg_bandwidth : bool;
  eddsa_verify_cache : bool;
  compress_proofs : bool;
}

let wots ~d = Wots (Params.Wots.make ~d ())
let hors_factorized ~k = Hors_factorized (Params.Hors.make ~k ())

let hors_merklified ?(trees = 8) ~k () =
  let params = Params.Hors.make ~k () in
  if params.Params.Hors.t mod trees <> 0 then
    invalid_arg "Config.hors_merklified: trees must divide t";
  Hors_merklified { params; trees }

let make ?(hash = Dsig_hashes.Hash.Haraka) ?(batch_size = 128) ?(queue_threshold = 512)
    ?(cache_batches = 8) ?(cache_chains = true) ?(reduce_bg_bandwidth = true)
    ?(eddsa_verify_cache = true) ?(compress_proofs = false) hbss =
  if not (Params.is_pow2 batch_size) then
    invalid_arg "Config.make: batch_size must be a power of two";
  if queue_threshold <= 0 || cache_batches <= 0 then
    invalid_arg "Config.make: thresholds must be positive";
  let reduce_bg_bandwidth =
    match hbss with Hors_merklified _ -> false | Wots _ | Hors_factorized _ -> reduce_bg_bandwidth
  in
  {
    hbss;
    hash;
    batch_size;
    queue_threshold;
    cache_batches;
    cache_chains;
    reduce_bg_bandwidth;
    eddsa_verify_cache;
    compress_proofs;
  }

let default = make (wots ~d:4)

let scheme_tag t =
  match t.hbss with Wots _ -> 1 | Hors_factorized _ -> 2 | Hors_merklified _ -> 3

let hash_tag t =
  match t.hash with Dsig_hashes.Hash.Sha256 -> 0 | Blake3 -> 1 | Haraka -> 2

let batch_levels t = Params.log2_exact t.batch_size

let describe t =
  let scheme =
    match t.hbss with
    | Wots p -> Printf.sprintf "W-OTS+ d=%d" p.Params.Wots.d
    | Hors_factorized p -> Printf.sprintf "HORS-F k=%d t=%d" p.Params.Hors.k p.Params.Hors.t
    | Hors_merklified { params; trees } ->
        Printf.sprintf "HORS-M k=%d t=%d trees=%d" params.Params.Hors.k params.Params.Hors.t trees
  in
  Printf.sprintf "%s/%s batch=%d S=%d" scheme
    (Dsig_hashes.Hash.to_string t.hash)
    t.batch_size t.queue_threshold

let fingerprint t =
  Dsig_util.Bytesutil.to_hex (Dsig_hashes.Hash.digest Dsig_hashes.Hash.Blake3 ~length:8 (describe t))
