(** DSig configuration: the HBSS and its parameters, the hash function,
    and the system knobs of §4 (EdDSA batch size, key-queue threshold S,
    verifier cache size) with the paper's recommended defaults (§5.4,
    §8 "DSig configuration"). *)

type hbss =
  | Wots of Dsig_hbss.Params.Wots.t
      (** recover-the-public-key verification; recommended (§5.4) *)
  | Hors_factorized of Dsig_hbss.Params.Hors.t
      (** signature embeds the non-deducible public-key elements *)
  | Hors_merklified of { params : Dsig_hbss.Params.Hors.t; trees : int }
      (** signature embeds forest roots and per-secret inclusion proofs *)

type t = {
  hbss : hbss;
  hash : Dsig_hashes.Hash.algo;  (** HBSS chain/element hash *)
  batch_size : int;  (** HBSS public keys per EdDSA signature (default 128, §8.7) *)
  queue_threshold : int;  (** S: refill a group's key queue below this (default 512) *)
  cache_batches : int;
      (** verified batches a verifier retains per signer (default
          2*S/batch = 8, i.e. the paper's 2*S = 1024 keys) *)
  cache_chains : bool;  (** precompute W-OTS+ chains so signing is copying (default true) *)
  reduce_bg_bandwidth : bool;
      (** background plane sends 32-byte key digests instead of full
          public keys (§4.4); forced off by [Hors_merklified], which
          needs full keys ahead of time (§5.2) *)
  eddsa_verify_cache : bool;  (** cache foreground EdDSA verifications (§4.4) *)
  compress_proofs : bool;
      (** merklified HORS only (an extension beyond the paper): encode
          the k per-secret inclusion proofs as shared-path multiproofs,
          trimming ~18% of the signature (ablation bench #7) *)
}

val default : t
(** W-OTS+ d = 4 over Haraka, batch 128, S = 512 — the recommended
    configuration (§5.4). *)

val make :
  ?hash:Dsig_hashes.Hash.algo ->
  ?batch_size:int ->
  ?queue_threshold:int ->
  ?cache_batches:int ->
  ?cache_chains:bool ->
  ?reduce_bg_bandwidth:bool ->
  ?eddsa_verify_cache:bool ->
  ?compress_proofs:bool ->
  hbss ->
  t
(** @raise Invalid_argument if [batch_size] is not a positive power of
    two or thresholds are non-positive. *)

val wots : d:int -> hbss
val hors_factorized : k:int -> hbss
val hors_merklified : ?trees:int -> k:int -> unit -> hbss

val scheme_tag : t -> int
(** Wire tag: 1 = W-OTS+, 2 = HORS factorized, 3 = HORS merklified. *)

val hash_tag : t -> int
val batch_levels : t -> int
(** log2 of the batch size: Merkle proof length in the signature. *)

val describe : t -> string

val fingerprint : t -> string
(** Short stable digest (hex) of everything {!describe} prints; the
    durable key store records it so a journal is never resumed under a
    different scheme ({!Dsig_store.Keystate}). *)
