open Dsig_hbss
module Merkle = Dsig_merkle.Merkle
module Eddsa = Dsig_ed25519.Eddsa
module Rng = Dsig_util.Rng
module Retry = Dsig_util.Retry
module Domain_pool = Dsig_util.Domain_pool
module Tel = Dsig_telemetry.Telemetry
module Tracer = Dsig_telemetry.Tracer
module Metric = Dsig_telemetry.Metric
module Lifecycle = Dsig_telemetry.Lifecycle
module Trace = Dsig_telemetry.Trace_ctx
module Keystate = Dsig_store.Keystate

type prepared = {
  key : Onetime.t;
  batch_id : int64;
  proof : Merkle.proof;
  root_sig : string;
}

type group = { members : int list (* sorted *); queue : prepared Queue.t }

(* A pre-generated next-generation batch awaiting cutover (key
   lifecycle plane): sealed and announced, but not yet serving keys. *)
type staged = {
  s_epoch : int;
  s_batch_id : int64;
  s_keys : prepared Queue.t;
  s_size : int;
  s_staged_at_us : float;
}

type stats = {
  mutable signatures : int;
  mutable batches : int;
  mutable sync_refills : int;
  mutable reannounces : int;
  mutable requests_served : int;
}

(* Telemetry handles, resolved once at creation (metric names are shared
   across signers; per-signer series are distinguished by tracer tags). *)
type tel = {
  bundle : Tel.t;
  c_sign : Metric.Counter.t;
  c_sync : Metric.Counter.t;
  c_batches : Metric.Counter.t;
  c_reannounce : Metric.Counter.t;
  c_acks : Metric.Counter.t;
  c_requests : Metric.Counter.t;
  c_giveups : Metric.Counter.t;
  c_redundant : Metric.Counter.t;
  c_rot_staged : Metric.Counter.t;
  c_rot_cutovers : Metric.Counter.t;
  c_rot_dropped_keys : Metric.Counter.t;
  h_sign : Metric.Histogram.t;
  h_refill : Metric.Histogram.t;
  h_cutover : Metric.Histogram.t;
  g_queue : Metric.Gauge.t;
  g_unacked : Metric.Gauge.t;
  g_rtt : Metric.Gauge.t;
  g_rto : Metric.Gauge.t;
  g_epoch : Metric.Gauge.t;
  g_peer_pressure : Metric.Gauge.t;
  (* exporters have no label dimension, so per-destination series are
     name-suffixed (dsig_rtt_us_dest_<id>) and resolved lazily *)
  dest_gauges : (int, Metric.Gauge.t * Metric.Gauge.t) Hashtbl.t;
}

type t = {
  cfg : Config.t;
  id : int;
  eddsa : Eddsa.secret_key;
  rng : Rng.t;
  groups : group list; (* default group last, so smaller matches win *)
  mutable batch_counter : int64;
  mutable epoch : int; (* confirmed rotation epoch *)
  mutable staged : staged option; (* pre-generated batch awaiting cutover *)
  send : dest:int -> Batch.announcement -> unit;
  outbox : (int * Batch.announcement) Queue.t;
  announce : Announce.t; (* ACK tracking + re-announce + request repair *)
  mutable gave_up_seen : int; (* Announce.gave_up already counted *)
  keystate : Keystate.t option; (* durable key-state journal, if enabled *)
  store_report : Keystate.report option;
  translog_sink : (signer:int -> op:string -> signature:string -> unit) option;
  pool : Domain_pool.t option; (* worker domains for keygen / sign_many *)
  sample_hook : (now_us:float -> unit) option; (* observability tick, see Options *)
  stats : stats;
  tel : tel;
}

let create cfg ~id ~eddsa ~rng ?send ?(groups = []) ?(options = Options.default) ~verifiers () =
  let telemetry = options.Options.telemetry in
  let outbox = Queue.create () in
  let send =
    match send with
    | Some f -> f
    | None -> fun ~dest ann -> Queue.add (dest, ann) outbox
  in
  let normalize members = List.sort_uniq compare members in
  let mk members = { members = normalize members; queue = Queue.create () } in
  let default = mk verifiers in
  let extra =
    groups
    |> List.map normalize
    |> List.filter (fun m -> m <> default.members)
    |> List.sort_uniq compare
    |> List.map (fun m -> { members = m; queue = Queue.create () })
  in
  (* smallest groups first so the "smallest group containing the hint"
     rule is a simple find *)
  let extra = List.sort (fun a b -> compare (List.length a.members) (List.length b.members)) extra in
  let keystate, store_report =
    match options.Options.store with
    | None -> (None, None)
    | Some s -> (
        let store_cfg =
          Keystate.config ~group_commit:s.Options.group_commit ~fsync:s.Options.fsync
            ~checkpoint_every:s.Options.checkpoint_every s.Options.dir
        in
        match Keystate.open_ ~telemetry ~fingerprint:(Config.fingerprint cfg) store_cfg with
        | Error e -> failwith ("Signer.create: " ^ e)
        | Ok (ks, report) -> (Some ks, Some report))
  in
  {
    cfg;
    id;
    eddsa;
    rng;
    groups = extra @ [ default ];
    (* resume past every batch id the previous incarnation might have
       used — the report already includes the crash gap *)
    batch_counter =
      (match store_report with Some r -> r.Keystate.next_batch_id | None -> 0L);
    epoch = (match store_report with Some r -> r.Keystate.epoch | None -> 0);
    staged = None;
    send;
    outbox;
    announce =
      Announce.create ~policy:options.Options.retry ~pacing:options.Options.pacing
        ~retain:options.Options.retain ~rng:(Rng.split rng)
        ~clock:(fun () -> Tel.now telemetry)
        ();
    gave_up_seen = 0;
    keystate;
    store_report;
    translog_sink = options.Options.translog;
    pool = options.Options.parallel;
    sample_hook = options.Options.sample_hook;
    stats = { signatures = 0; batches = 0; sync_refills = 0; reannounces = 0; requests_served = 0 };
    tel =
      {
        bundle = telemetry;
        c_sign = Tel.counter telemetry "dsig_signer_signatures_total";
        c_sync = Tel.counter telemetry "dsig_signer_sync_refills_total";
        c_batches = Tel.counter telemetry "dsig_signer_batches_total";
        c_reannounce = Tel.counter telemetry "dsig_signer_reannounces_total";
        c_acks = Tel.counter telemetry "dsig_signer_acks_total";
        c_requests = Tel.counter telemetry "dsig_signer_batch_requests_total";
        c_giveups = Tel.counter telemetry "dsig_signer_announce_giveups_total";
        c_redundant = Tel.counter telemetry "dsig_reannounce_redundant_total";
        c_rot_staged = Tel.counter telemetry "dsig_rotation_staged_total";
        c_rot_cutovers = Tel.counter telemetry "dsig_rotation_cutovers_total";
        c_rot_dropped_keys = Tel.counter telemetry "dsig_rotation_dropped_keys_total";
        h_sign = Tel.histogram telemetry "dsig_signer_sign_us";
        h_refill = Tel.histogram telemetry "dsig_signer_refill_us";
        h_cutover = Tel.histogram telemetry "dsig_rotation_cutover_us";
        g_queue = Tel.gauge telemetry "dsig_signer_queue_depth";
        g_unacked = Tel.gauge telemetry "dsig_signer_unacked_announcements";
        g_rtt = Tel.gauge telemetry "dsig_rtt_us";
        g_rto = Tel.gauge telemetry "dsig_rto_us";
        g_epoch = Tel.gauge telemetry "dsig_rotation_epoch";
        g_peer_pressure = Tel.gauge telemetry "dsig_signer_peer_pressure";
        dest_gauges = Hashtbl.create 8;
      };
  }

let id t = t.id
let config t = t.cfg
let eddsa_public_key t = Eddsa.public_key t.eddsa
let stats t = t.stats
let store t = t.keystate
let store_recovery t = t.store_report
let close t = Option.iter Keystate.close t.keystate

let drain_outbox t =
  let items = List.of_seq (Queue.to_seq t.outbox) in
  Queue.clear t.outbox;
  items

let subset hint members = List.for_all (fun v -> List.mem v members) hint

let select_group t hint =
  match hint with
  | None -> List.nth t.groups (List.length t.groups - 1)
  | Some hint -> (
      let hint = List.sort_uniq compare hint in
      match List.find_opt (fun g -> subset hint g.members) t.groups with
      | Some g -> g
      | None -> List.nth t.groups (List.length t.groups - 1))

(* Generate one batch for [group], multicast its announcement, and queue
   the prepared keys (Alg. 1 lines 6-11, batched per §4.4). *)
let refill t group =
  Log.L.debug (fun m ->
      m "signer %d: refilling group [%s] (queue %d < S=%d)" t.id
        (String.concat "," (List.map string_of_int group.members))
        (Queue.length group.queue) t.cfg.Config.queue_threshold);
  let t0 = Tel.now t.tel.bundle in
  Tracer.record_at t.tel.bundle.Tel.tracer ~tag:t.id Tracer.Batch_gen Tracer.Begin t0;
  let batch_id = t.batch_counter in
  t.batch_counter <- Int64.add t.batch_counter 1L;
  let batch =
    Batch.make ~telemetry:t.tel.bundle ?pool:t.pool t.cfg ~signer_id:t.id ~batch_id
      ~eddsa:t.eddsa ~rng:t.rng
  in
  (* journal the seal before any of the batch's keys can sign *)
  Option.iter (fun ks -> Keystate.seal ks ~batch_id ~size:(Batch.size batch)) t.keystate;
  t.stats.batches <- t.stats.batches + 1;
  let ann = Batch.announcement t.cfg batch in
  let dests = List.filter (fun dest -> dest <> t.id) group.members in
  (* track before sending: over an in-process transport the ACK comes
     back synchronously, and it must find the batch registered *)
  if dests <> [] then Announce.track t.announce ann ~dests;
  List.iter (fun dest -> t.send ~dest ann) dests;
  if dests <> [] then
    Metric.Gauge.set t.tel.g_unacked (float_of_int (Announce.pending t.announce));
  for i = 0 to Batch.size batch - 1 do
    Queue.add
      {
        key = Batch.key batch i;
        batch_id;
        proof = Batch.proof batch i;
        root_sig = Batch.root_signature batch;
      }
      group.queue
  done;
  Metric.Counter.incr t.tel.c_batches;
  (* the gauge tracks prepared keys process-wide, so move it by deltas
     rather than overwriting other signers' contributions *)
  Metric.Gauge.add t.tel.g_queue (float_of_int (Batch.size batch));
  let t1 = Tel.now t.tel.bundle in
  Metric.Histogram.add t.tel.h_refill (t1 -. t0);
  Tracer.record_at t.tel.bundle.Tel.tracer ~tag:t.id Tracer.Batch_gen Tracer.End t1

let default_group t = List.nth t.groups (List.length t.groups - 1)

(* --- zero-downtime rotation (key lifecycle plane) ---

   [stage_next_batch] pre-generates the next-generation batch off the
   critical path — journaling the propose record {e before} the seal so
   a crash at any point recovers to exactly one live generation — and
   announces its root over the ordinary announcement/ACK plane while
   the current batch keeps serving. [cutover] then atomically swaps:
   journal the confirm record, drop the dying batches' pending
   re-announcements, discard their queued keys, and start serving the
   staged generation. *)

let stage_next_batch t =
  if t.staged <> None then invalid_arg "Signer.stage_next_batch: rotation already staged";
  let t0 = Tel.now t.tel.bundle in
  let epoch = t.epoch + 1 in
  let batch_id = t.batch_counter in
  t.batch_counter <- Int64.add t.batch_counter 1L;
  Option.iter (fun ks -> Keystate.propose_rotation ks ~epoch ~batch_id) t.keystate;
  let batch =
    Batch.make ~telemetry:t.tel.bundle ?pool:t.pool t.cfg ~signer_id:t.id ~batch_id
      ~eddsa:t.eddsa ~rng:t.rng
  in
  Option.iter (fun ks -> Keystate.seal ks ~batch_id ~size:(Batch.size batch)) t.keystate;
  t.stats.batches <- t.stats.batches + 1;
  Metric.Counter.incr t.tel.c_batches;
  let ann = Batch.announcement t.cfg batch in
  let group = default_group t in
  let dests = List.filter (fun dest -> dest <> t.id) group.members in
  if dests <> [] then Announce.track t.announce ann ~dests;
  List.iter (fun dest -> t.send ~dest ann) dests;
  if dests <> [] then
    Metric.Gauge.set t.tel.g_unacked (float_of_int (Announce.pending t.announce));
  let keys = Queue.create () in
  for i = 0 to Batch.size batch - 1 do
    Queue.add
      {
        key = Batch.key batch i;
        batch_id;
        proof = Batch.proof batch i;
        root_sig = Batch.root_signature batch;
      }
      keys
  done;
  t.staged <-
    Some
      { s_epoch = epoch; s_batch_id = batch_id; s_keys = keys; s_size = Batch.size batch;
        s_staged_at_us = t0 };
  Metric.Counter.incr t.tel.c_rot_staged;
  Log.L.info (fun m ->
      m "signer %d: staged rotation epoch %d (batch %Ld, %d keys)" t.id epoch batch_id
        (Batch.size batch));
  (epoch, batch_id)

let staged_rotation t = Option.map (fun s -> (s.s_epoch, s.s_batch_id)) t.staged

let staged_unacked t =
  match t.staged with
  | None -> None
  | Some s -> (
      match Announce.pending_for t.announce ~batch_id:s.s_batch_id with
      | Some n -> Some n
      | None -> Some 0)

let cutover t =
  match t.staged with
  | None -> invalid_arg "Signer.cutover: no staged rotation"
  | Some s ->
      let t0 = Tel.now t.tel.bundle in
      Option.iter
        (fun ks -> Keystate.confirm_rotation ks ~epoch:s.s_epoch ~batch_id:s.s_batch_id)
        t.keystate;
      (* the dying generation stops re-announcing and its queued keys
         are discarded — they can never sign under the new epoch *)
      ignore (Announce.drop_before t.announce ~batch_id:s.s_batch_id);
      let discarded = ref 0 in
      List.iter
        (fun g ->
          discarded := !discarded + Queue.length g.queue;
          Queue.clear g.queue)
        t.groups;
      if !discarded > 0 then begin
        Metric.Counter.incr ~by:!discarded t.tel.c_rot_dropped_keys;
        Metric.Gauge.add t.tel.g_queue (float_of_int (- !discarded))
      end;
      let group = default_group t in
      Queue.transfer s.s_keys group.queue;
      Metric.Gauge.add t.tel.g_queue (float_of_int s.s_size);
      t.epoch <- s.s_epoch;
      t.staged <- None;
      Metric.Gauge.set t.tel.g_unacked (float_of_int (Announce.pending t.announce));
      Metric.Counter.incr t.tel.c_rot_cutovers;
      Metric.Gauge.set t.tel.g_epoch (float_of_int t.epoch);
      let t1 = Tel.now t.tel.bundle in
      Metric.Histogram.add t.tel.h_cutover (t1 -. t0);
      Log.L.info (fun m ->
          m "signer %d: rotation cutover to epoch %d (batch %Ld, %d stale keys dropped)" t.id
            t.epoch s.s_batch_id !discarded);
      t.epoch

let epoch t = t.epoch

let background_step t =
  match
    List.find_opt
      (fun g ->
        Queue.length g.queue < t.cfg.Config.queue_threshold
        (* a staged rotation suppresses refills of the dying default
           generation: cutover is imminent and would discard them *)
        && not (t.staged <> None && g == default_group t))
      t.groups
  with
  | None -> false
  | Some g ->
      refill t g;
      true

let background_fill t = while background_step t do () done

let queue_length t hint = Queue.length (select_group t (Some hint)).queue

let fresh_nonce t = Rng.bytes t.rng 16

(* Pure given its inputs (reads only [t.cfg]), so [sign_many] can run it
   on worker domains with pre-drawn nonces. *)
let make_body_with t ~nonce prepared msg =
  match prepared.key with
  | Onetime.Wots_key kp -> Wire.Wots_body (Wots.sign kp ~nonce msg)
  | Onetime.Hors_key { kp; forest = None } ->
      let hsig = Hors.sign kp ~nonce msg in
      let p = Hors.params kp in
      let indices = Hors.message_indices p ~public_seed:(Hors.public_seed kp) ~nonce msg in
      let selected = Array.make p.Params.Hors.t false in
      Array.iter (fun i -> selected.(i) <- true) indices;
      let elements = Hors.public_elements kp in
      let complement =
        Array.of_list
          (List.filteri (fun i _ -> not selected.(i)) (Array.to_list elements))
      in
      Wire.Hors_fact_body { hsig; complement }
  | Onetime.Hors_key { kp; forest = Some f } ->
      let hsig = Hors.sign kp ~nonce msg in
      let p = Hors.params kp in
      let indices = Hors.message_indices p ~public_seed:(Hors.public_seed kp) ~nonce msg in
      let roots = Array.of_list (Merkle.Forest.roots f) in
      if t.cfg.Config.compress_proofs then begin
        (* group the selected leaves by tree and emit one shared-path
           multiproof per touched tree (extension; ablation #7) *)
        let per_tree = p.Params.Hors.t / Array.length roots in
        let by_tree = Hashtbl.create 8 in
        Array.iter
          (fun idx ->
            let tr = idx / per_tree in
            let cur = Option.value ~default:[] (Hashtbl.find_opt by_tree tr) in
            if not (List.mem (idx mod per_tree) cur) then
              Hashtbl.replace by_tree tr ((idx mod per_tree) :: cur))
          indices;
        let mps =
          Hashtbl.fold
            (fun tr idx acc -> (tr, Merkle.Multiproof.create (Merkle.Forest.tree f tr) idx) :: acc)
            by_tree []
          |> List.sort compare
        in
        Wire.Hors_merk_mp_body { hsig; roots; mps }
      end
      else begin
        let proofs = Array.map (fun idx -> Merkle.Forest.proof f idx) indices in
        Wire.Hors_merk_body { hsig; roots; proofs }
      end

let make_body t prepared msg = make_body_with t ~nonce:(fresh_nonce t) prepared msg

let encode_prepared t prepared body =
  Wire.encode t.cfg
    {
      Wire.signer_id = t.id;
      batch_id = prepared.batch_id;
      public_seed = Onetime.public_seed prepared.key;
      body;
      batch_proof = prepared.proof;
      root_sig = prepared.root_sig;
    }

let sign_impl t ?hint msg =
  let t0 = Tel.now t.tel.bundle in
  let group = select_group t hint in
  let synced = Queue.is_empty group.queue in
  if synced then begin
    (* a drained default queue with a staged rotation cuts over instead
       of refilling the dying generation — signing never blocks on
       rotation for longer than the cutover itself *)
    if t.staged <> None && group == default_group t then ignore (cutover t)
    else begin
      t.stats.sync_refills <- t.stats.sync_refills + 1;
      Metric.Counter.incr t.tel.c_sync;
      Log.L.warn (fun m ->
          m "signer %d: key queue empty, refilling on the critical path" t.id);
      refill t group
    end
  end;
  let prepared = Queue.pop group.queue in
  let key_index = prepared.proof.Merkle.index in
  (* durability invariant: the reservation is journaled (and covered by
     the group-commit protocol) before the signature is even built, so a
     signature can never leave the process without its record *)
  Option.iter
    (fun ks -> Keystate.reserve ks ~batch_id:prepared.batch_id ~key_index)
    t.keystate;
  t.stats.signatures <- t.stats.signatures + 1;
  let body = make_body t prepared msg in
  let wire = encode_prepared t prepared body in
  (* transparency: the wire signature is recorded before it is handed
     to the caller, so every signature that leaves the process is in
     the log a verifier can demand inclusion proofs from *)
  Option.iter (fun f -> f ~signer:t.id ~op:msg ~signature:wire) t.translog_sink;
  Metric.Counter.incr t.tel.c_sign;
  Metric.Gauge.add t.tel.g_queue (-1.0);
  let t1 = Tel.now t.tel.bundle in
  Metric.Histogram.add t.tel.h_sign (t1 -. t0);
  let span = if synced then Tracer.Sign_sync_refill else Tracer.Sign_fast in
  Tracer.record_at t.tel.bundle.Tel.tracer ~tag:t.id span Tracer.Begin t0;
  Tracer.record_at t.tel.bundle.Tel.tracer ~tag:t.id span Tracer.End t1;
  let lc = t.tel.bundle.Tel.lifecycle in
  if Lifecycle.enabled lc then
    Lifecycle.sign lc
      ~trace_id:(Trace.id ~signer:t.id ~batch_id:prepared.batch_id ~key_index)
      ~origin:t.id ~birth_us:t0 ~dur_us:(t1 -. t0);
  (wire, prepared.batch_id, key_index, t0)

let sign t ?hint msg =
  let wire, _, _, _ = sign_impl t ?hint msg in
  wire

let sign_ctx t ?hint msg =
  let wire, batch_id, key_index, t0 = sign_impl t ?hint msg in
  (wire, Trace.make ~signer:t.id ~batch_id ~key_index ~origin:t.id ~birth_us:t0)

(* Batch signing across the worker pool. The division of labor follows
   the shard-ownership invariant (DESIGN.md §12): the calling domain
   pops prepared keys (ascending key indices), journals every
   reservation in consumption order, and pre-draws the nonces; worker
   domains then build signature bodies and wire encodings over
   contiguous index ranges — one range per shard, so no two domains
   ever touch the same one-time key; the calling domain folds back
   translog, stats, metrics, tracer and lifecycle accounting in input
   order. Without a pool this degrades to a plain loop over [sign]. *)
let sign_many t ?hint msgs =
  let n = Array.length msgs in
  match t.pool with
  | Some pool when n > 1 && Domain_pool.size pool > 1 ->
      let group = select_group t hint in
      if t.staged <> None && Queue.length group.queue < n && group == default_group t then
        ignore (cutover t);
      while Queue.length group.queue < n do
        t.stats.sync_refills <- t.stats.sync_refills + 1;
        Metric.Counter.incr t.tel.c_sync;
        Log.L.warn (fun m ->
            m "signer %d: key queue short (%d < %d), refilling on the critical path" t.id
              (Queue.length group.queue) n);
        refill t group
      done;
      let prepared = Array.init n (fun _ -> Queue.pop group.queue) in
      (* durability invariant, batch form: every reservation is
         journaled — in the same ascending-index order a sequential
         signer would produce — before any signature is built, so no
         signature can leave the process without its record *)
      Option.iter
        (fun ks ->
          Array.iter
            (fun p -> Keystate.reserve ks ~batch_id:p.batch_id ~key_index:p.proof.Merkle.index)
            prepared)
        t.keystate;
      let nonces = Array.init n (fun _ -> fresh_nonce t) in
      let jobs = Array.init n (fun i -> (prepared.(i), nonces.(i), msgs.(i))) in
      let results =
        Domain_pool.parallel_map pool
          ~f:(fun ~shard:_ (p, nonce, msg) ->
            let t0 = Tel.now t.tel.bundle in
            let wire = encode_prepared t p (make_body_with t ~nonce p msg) in
            let t1 = Tel.now t.tel.bundle in
            (wire, t0, t1))
          jobs
      in
      let lc = t.tel.bundle.Tel.lifecycle in
      Array.iteri
        (fun i (wire, t0, t1) ->
          let p = prepared.(i) in
          Option.iter (fun f -> f ~signer:t.id ~op:msgs.(i) ~signature:wire) t.translog_sink;
          t.stats.signatures <- t.stats.signatures + 1;
          Metric.Counter.incr t.tel.c_sign;
          Metric.Histogram.add t.tel.h_sign (t1 -. t0);
          Tracer.record_at t.tel.bundle.Tel.tracer ~tag:t.id Tracer.Sign_fast Tracer.Begin t0;
          Tracer.record_at t.tel.bundle.Tel.tracer ~tag:t.id Tracer.Sign_fast Tracer.End t1;
          if Lifecycle.enabled lc then
            Lifecycle.sign lc
              ~trace_id:
                (Trace.id ~signer:t.id ~batch_id:p.batch_id ~key_index:p.proof.Merkle.index)
              ~origin:t.id ~birth_us:t0 ~dur_us:(t1 -. t0))
        results;
      Metric.Gauge.add t.tel.g_queue (float_of_int (-n));
      Array.map (fun (wire, _, _) -> wire) results
  | _ -> Array.map (fun msg -> sign t ?hint msg) msgs

(* --- announcement-plane control surface (Control_plane.S) --- *)

let sync_unacked_gauge t = Metric.Gauge.set t.tel.g_unacked (float_of_int (Announce.pending t.announce))

let dest_gauges t dest =
  match Hashtbl.find_opt t.tel.dest_gauges dest with
  | Some g -> g
  | None ->
      let g =
        ( Tel.gauge t.tel.bundle (Printf.sprintf "dsig_rtt_us_dest_%d" dest),
          Tel.gauge t.tel.bundle (Printf.sprintf "dsig_rto_us_dest_%d" dest) )
      in
      Hashtbl.add t.tel.dest_gauges dest g;
      g

let observe_rto t ~dest rto =
  let _, g_rto_dest = dest_gauges t dest in
  Metric.Gauge.set t.tel.g_rto rto;
  Metric.Gauge.set g_rto_dest rto

let deliver_ack t (a : Batch.ack) =
  if a.Batch.ack_signer = t.id then begin
    let o = Announce.ack t.announce ~verifier:a.Batch.ack_verifier ~batch_id:a.Batch.ack_batch in
    if o.Announce.settled then begin
      Metric.Counter.incr t.tel.c_acks;
      sync_unacked_gauge t;
      let dest = a.Batch.ack_verifier in
      (match o.Announce.rtt_sample_us with
      | Some rtt ->
          let g_rtt_dest, _ = dest_gauges t dest in
          Metric.Gauge.set t.tel.g_rtt rtt;
          Metric.Gauge.set g_rtt_dest rtt
      | None -> ());
      (match o.Announce.rto_us with
      | Some rto -> observe_rto t ~dest rto
      | None -> ());
      if o.Announce.redundant then Metric.Counter.incr t.tel.c_redundant
    end
  end

let note_pressure t ~verifier ~pressure =
  Announce.note_pressure t.announce ~dest:verifier ~pressure;
  Metric.Gauge.set t.tel.g_peer_pressure (float_of_int pressure)

let deliver_request t (r : Batch.request) =
  if r.Batch.req_signer <> t.id then None
  else
    match Announce.lookup t.announce ~batch_id:r.Batch.req_batch with
    | None ->
        Log.L.debug (fun m ->
            m "signer %d: batch %Ld requested by %d but no longer retained" t.id
              r.Batch.req_batch r.Batch.req_verifier);
        None
    | Some ann ->
        t.stats.requests_served <- t.stats.requests_served + 1;
        Metric.Counter.incr t.tel.c_requests;
        Some ann

let step t ~now =
  (match t.sample_hook with Some hook -> hook ~now_us:now | None -> ());
  let due = Announce.due ~now t.announce in
  (match due with
  | [] -> ()
  | _ :: _ ->
      let t0 = Tel.now t.tel.bundle in
      List.iter
        (fun (dest, _) ->
          t.stats.reannounces <- t.stats.reannounces + 1;
          Metric.Counter.incr t.tel.c_reannounce;
          match Announce.rto_us t.announce ~dest with
          | Some rto -> observe_rto t ~dest rto
          | None -> ())
        due;
      (* destinations abandoned this round surface as counter deltas *)
      let gave_up = Announce.gave_up t.announce in
      if gave_up > t.gave_up_seen then begin
        Metric.Counter.incr ~by:(gave_up - t.gave_up_seen) t.tel.c_giveups;
        t.gave_up_seen <- gave_up
      end;
      sync_unacked_gauge t;
      let t1 = Tel.now t.tel.bundle in
      Tracer.record_at t.tel.bundle.Tel.tracer ~tag:t.id Tracer.Reannounce Tracer.Begin t0;
      Tracer.record_at t.tel.bundle.Tel.tracer ~tag:t.id Tracer.Reannounce Tracer.End t1);
  due

let unacked_announcements t = Announce.pending t.announce
