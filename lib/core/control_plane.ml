module type S = sig
  type t

  val deliver_ack : t -> Batch.ack -> unit
  val deliver_request : t -> Batch.request -> Batch.announcement option
  val note_pressure : t -> verifier:int -> pressure:int -> unit
  val step : t -> now:float -> (int * Batch.announcement) list
end

(* both signer flavors satisfy the signature — checked here so a drift
   in either module is a compile error in this file, not in a caller *)
module Signer_cp : S with type t = Signer.t = Signer
module Runtime_cp : S with type t = Runtime.t = Runtime

type t = Handle : (module S with type t = 'a) * 'a -> t

let of_signer s = Handle ((module Signer_cp), s)
let of_runtime r = Handle ((module Runtime_cp), r)
let deliver_ack (Handle ((module M), x)) a = M.deliver_ack x a
let deliver_request (Handle ((module M), x)) r = M.deliver_request x r
let note_pressure (Handle ((module M), x)) ~verifier ~pressure = M.note_pressure x ~verifier ~pressure
let step (Handle ((module M), x)) ~now = M.step x ~now

let deliver t control =
  match control with
  | Batch.Ack a ->
      deliver_ack t a;
      []
  | Batch.Acks l ->
      List.iter (deliver_ack t) l;
      []
  | Batch.Credit { pressure; acks } ->
      (* all acks in a Credit frame come from one verifier; an empty
         frame carries no routable origin and is dropped *)
      (match acks with
      | a :: _ -> note_pressure t ~verifier:a.Batch.ack_verifier ~pressure
      | [] -> ());
      List.iter (deliver_ack t) acks;
      []
  | Batch.Request r -> (
      match deliver_request t r with
      | Some ann -> [ (r.Batch.req_verifier, ann) ]
      | None -> [])
