(** The DSig verifier — Algorithm 2 of the paper.

    The background plane ({!deliver}) receives batch announcements,
    EdDSA-verifies their Merkle roots and caches them (plus, when the
    signer sends full keys, the precomputed public keys for the
    comparison-only fast path of §5.2). The foreground plane ({!verify})
    recovers or reconstructs the public-key digest from the signature,
    folds the inclusion proof to a root, and accepts if that root is
    cached; otherwise it falls back to verifying the embedded EdDSA
    signature on the critical path (slow path — the "incorrect hint"
    case of §8.2), optionally caching the result (§4.4 "speeding up bulk
    verification").

    The verifier is {b domain-safe}: every mutable table (batch cache,
    EdDSA cache, pull-repair pacing, pending ACKs, stats) is guarded by
    its own mutex, metric handles are resolved per domain, and no lock
    is ever held across a control-plane [send] (which may synchronously
    re-enter the verifier through an in-process loopback). Concurrent
    {!verify} / {!deliver} / {!flush_acks} calls from multiple domains
    are safe; see DESIGN.md §12. *)

type t

val create :
  Config.t ->
  id:int ->
  pki:Pki.t ->
  ?control:(Batch.control -> unit) ->
  ?options:Options.t ->
  unit ->
  t
(** [control] is the verifier's background-plane uplink: {!deliver}
    replies with a {!Batch.Ack} on every accepted announcement, and the
    foreground {!verify} emits a {!Batch.Request} when it slow-paths on
    a batch it never received (pull repair), paced per (signer, batch)
    by the [options] record's [request_policy] (default: 500 µs base,
    exponential, 8 attempts). Without [control] the verifier behaves
    exactly as before — self-standing, fire-and-forget.

    [options] (default {!Options.default}) supplies the telemetry bundle
    and the pull-repair pacing policy; the other fields are signer-side
    and ignored here. With {!Options.with_loadctl}, the verifier also
    carries a {!Dsig_loadctl.Admission} controller: verify calls are
    classified ([Verify] when the batch root is cached, [Repair]
    otherwise) and admitted against per-class token buckets {e before}
    any crypto runs — a shed signature reports [false] without being
    checked (never a false accept) — and every outbound acknowledgement
    frame becomes a {!Batch.Credit} carrying the controller's pressure
    byte, which signers feed to {!Signer.note_pressure} to pace their
    re-announcements down (DESIGN.md §15). The telemetry bundle receives
    [dsig_verifier_fast_total] / [dsig_verifier_slow_total] /
    [dsig_verifier_rejected_total] / [dsig_verifier_eddsa_cache_hits_total] /
    [dsig_verifier_announcements_total] counters, the slow-path
    breakdown [dsig_verifier_slow_missing_batch_total] (batch never
    delivered — repairable) vs [dsig_verifier_slow_cache_miss_total]
    (cached but root mismatch/eviction), the reliability counters
    [dsig_verifier_batch_requests_total] / [dsig_verifier_acks_total] /
    [dsig_verifier_eddsa_cache_evictions_total], [dsig_verifier_fast_us]
    / [dsig_verifier_slow_us] / [dsig_verifier_deliver_us] latency
    histograms, the [dsig_verifier_cached_batches] gauge, and — when the
    tracer is enabled — [verify_fast] / [verify_slow] /
    [announce_delivery] spans tagged with the verifier id. *)

val deliver : ?sent_us:float -> t -> Batch.announcement -> bool
(** Process a background announcement; [false] if the signer is unknown
    or the EdDSA root signature is invalid (the announcement is then
    ignored). [sent_us] is the transport's send stamp; when given (and
    the bundle's lifecycle aggregator is enabled) the announce-to-admit
    plane measures from it instead of from delivery start. *)

val deliver_many : t -> Batch.announcement list -> int
(** Catch-up delivery: checks all root signatures with randomized
    Ed25519 batch verification — one batch per worker domain when
    {!Options.with_parallel} supplied a pool, one batch total otherwise
    — falling back to per-announcement checks for any chunk that fails.
    Returns the number accepted. Acknowledgements are coalesced into one
    {!Batch.Acks} frame per signer. *)

val verify : t -> msg:string -> string -> bool
(** [verify t ~msg signature_bytes]. Self-standing: succeeds (slowly)
    even if no announcement was ever delivered.

    When the bundle's {!Dsig_telemetry.Lifecycle} is enabled, every
    accepted verification also closes the signature's lifecycle span
    under the trace id derived from its wire header (one mutable load
    when disabled). *)

val verify_ctx : t -> ctx:Dsig_telemetry.Trace_ctx.t -> msg:string -> string -> bool
(** {!verify} for a signature that arrived with a wire-propagated
    {!Dsig_telemetry.Trace_ctx}: the context's origin and birth stamp
    let the lifecycle span close end-to-end even when the signer lives
    in another process. *)

val verify_many : t -> (string * string) array -> bool array
(** [verify_many t pairs] verifies [(msg, signature_bytes)] pairs and
    returns per-pair verdicts in input order. With
    {!Options.with_parallel}, classification (decode, hashing, proof
    folding, slow-path EdDSA) is sharded over the pool's worker domains
    as contiguous index ranges; accounting, lifecycle joins and
    control-plane sends (pull repair) are folded back onto the calling
    domain. Without a pool this is a plain loop over {!verify}.
    Equivalent to [Array.map] of {!verify} in observable behavior,
    except that repair requests for the same gap may be paced slightly
    differently (they are emitted after the whole batch classifies). *)

val can_verify_fast : t -> string -> bool
(** True if the signature's batch root is already cached (Alg. 2
    lines 34-35) — used by applications to deprioritize
    expensive-to-check messages (DoS mitigation, §6 uBFT). *)

type stats = {
  mutable fast : int;  (** verifications served from the root cache *)
  mutable slow : int;  (** verifications that ran EdDSA inline *)
  mutable eddsa_cache_hits : int;
  mutable rejected : int;
  mutable announcements : int;
  mutable slow_missing_batch : int;
      (** slow-path verifications whose batch was never delivered *)
  mutable slow_cache_miss : int;
      (** slow-path verifications whose batch was cached but whose root
          did not match (eviction or cross-batch splice) *)
  mutable requests_sent : int;  (** pull-repair {!Batch.Request}s emitted *)
  mutable acks_sent : int;  (** individual acknowledgements emitted *)
  mutable ack_frames_sent : int;
      (** control frames ({!Batch.Ack} or {!Batch.Acks}) those
          acknowledgements travelled in — with {!Options.with_ack_delay}
          this grows slower than [acks_sent] *)
  mutable eddsa_cache_evictions : int;
}

val stats : t -> stats

val cached_batches : t -> signer:int -> int
(** Number of batches currently cached for a signer (tests). *)

val purge_signer : ?from_batch:int64 -> t -> signer:int -> int
(** Revocation enforcement hook: drop the signer's cached batch roots —
    all of them, or only ids [>= from_batch] when the revocation carries
    a batch boundary — and forget any pull-repair pacing state for the
    purged batches, so an announcement admitted before the revocation
    arrived cannot keep serving the fast path. Returns the number of
    batches purged. The {!Pki} gate ({!Pki.allowed}) makes fresh
    announcements and slow-path verifications fail independently; this
    only evicts what was already cached. *)

(** {1 ACK batching}

    With {!Options.with_ack_delay}, accepted announcements enqueue their
    acknowledgements instead of sending them: the verifier holds them
    for at most [min cap_us (srtt_fraction * srtt)] (SRTT estimated from
    the transport's announce send stamps) and the transport's pump calls
    {!flush_acks}, which emits one coalesced {!Batch.Acks} frame per
    signer ([dsig_verifier_ack_frames_total]). Before the first RTT
    estimate, or without the option, ACKs are sent immediately. *)

val flush_acks : ?force:bool -> t -> now:float -> int
(** Send the pending acknowledgement frames if the hold deadline has
    passed (or unconditionally with [force]); returns the number of
    frames emitted. [now] is in the telemetry clock's time base. *)

val pending_ack_count : t -> int
(** Acknowledgements currently held for coalescing. *)

val announce_srtt_us : t -> float option
(** The verifier-side smoothed announce round-trip estimate, if any
    announcement has arrived with a send stamp. *)

(** {1 Load control}

    Present only when the verifier was created with
    {!Options.with_loadctl}; see {!Dsig_loadctl.Admission} and
    DESIGN.md §15. *)

val admission : t -> Dsig_loadctl.Admission.t option
(** The attached admission controller, if any — read its {e shed}
    counters and JSON snapshot from here. *)

val observe_sojourn : t -> sojourn_us:float -> unit
(** Feed an externally measured queueing delay (e.g. inbox sojourn in a
    transport or simulator) into the controller's CoDel detector, in
    addition to the verify spans it observes on its own. A no-op
    without a controller. *)

val pressure : t -> int
(** The current back-pressure byte (0..255) outbound ACK frames carry;
    0 without a controller. *)
