(** Signer-side announcement reliability state.

    Tracks, per generated batch, which destination verifiers have
    acknowledged the batch announcement, schedules re-announcements for
    the rest under a {!Dsig_util.Retry} policy, and retains recent
    announcements so verifier pull requests ({!Batch.request}) can be
    served even after every ACK arrived. Shared by the in-simulation
    {!Signer} and the threaded {!Runtime} (which adds its own locking —
    this module is not thread-safe by itself). *)

type t

val create :
  ?policy:Dsig_util.Retry.policy ->
  ?retain:int ->
  rng:Dsig_util.Rng.t ->
  clock:(unit -> float) ->
  unit ->
  t
(** [retain] (default 64) bounds how many batches are kept for
    re-announcement and request repair; older batches are evicted FIFO,
    abandoning any still-unacknowledged destinations. [clock] supplies
    "now" in the caller's time base (wall or virtual µs). *)

val track : t -> Batch.announcement -> dests:int list -> unit
(** Register a freshly multicast announcement; every destination starts
    unacknowledged with a first re-announcement scheduled per policy.
    Tracking the same batch id again resets its entry. *)

val ack : t -> verifier:int -> batch_id:int64 -> bool
(** Mark [verifier] as having received [batch_id]. Returns [true] if it
    was pending (false for duplicates, unknown batches, or unknown
    destinations — all harmless). *)

val lookup : t -> batch_id:int64 -> Batch.announcement option
(** Retained announcement for a batch, for serving pull requests. *)

val due : t -> (int * Batch.announcement) list
(** Destinations whose re-announcement backoff has expired, paired with
    the announcement to re-send. Consuming the list advances each
    destination's backoff state; destinations whose retry budget is
    exhausted are dropped (counted in {!gave_up}) instead of returned. *)

val pending : t -> int
(** Outstanding (batch, destination) pairs still awaiting an ACK. *)

val batches : t -> int
(** Batches currently retained. *)

val acked : t -> int
(** ACKs that cleared a pending destination, ever. *)

val gave_up : t -> int
(** Destinations abandoned after exhausting the retry budget, ever. *)
