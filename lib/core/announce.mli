(** Signer-side announcement tracker: which (batch, verifier) pairs
    still lack an ACK, when to re-send each one, and which batches are
    retained for pull repair. Shared by the in-simulation {!Signer} and
    the threaded {!Runtime} (which adds its own locking — this module is
    not thread-safe by itself).

    Two scheduling modes, selected by {!Options.pacing} at {!create}
    time:

    - [Fixed]: every destination follows the same {!Dsig_util.Retry}
      backoff ladder — blind to the network, identical everywhere.
    - [Adaptive]: each destination gets an RFC-6298-style retransmission
      timeout from its own observed ACK round trips ({!Dsig_util.Rtt}),
      and emission is spread by a shared token bucket
      ({!Dsig_util.Pacer}). See DESIGN.md §9.

    In both modes the tracker stamps transmission times and watches ACK
    arrival times, so the RTT/RTO gauges and the redundant-re-announce
    counter are observable even under fixed pacing. *)

type t

val create :
  ?policy:Dsig_util.Retry.policy ->
  ?pacing:Options.pacing ->
  ?retain:int ->
  rng:Dsig_util.Rng.t ->
  clock:(unit -> float) ->
  unit ->
  t
(** [policy] (default {!Dsig_util.Retry.default}) drives fixed-mode
    backoff; [pacing] (default [Fixed]) selects the scheduling mode;
    [retain] (default 64) bounds how many batches are kept for
    re-announcement and request repair — older batches are evicted FIFO,
    abandoning any still-unacknowledged destinations. [clock] supplies
    "now" in the caller's time base (wall or virtual µs).
    @raise Invalid_argument if [retain] is not positive. *)

val adaptive : t -> bool
(** Whether this tracker was created with adaptive pacing. *)

val track : t -> Batch.announcement -> dests:int list -> unit
(** Register a freshly multicast announcement; every destination starts
    unacknowledged with first/last transmission stamped at the current
    clock and a re-announcement timer armed (per policy in fixed mode,
    per the destination's RTO in adaptive mode). Tracking the same batch
    id again resets its entry. *)

(** What an incoming ACK told us. *)
type ack_outcome = {
  settled : bool;
      (** the (batch, verifier) pair was outstanding and is now
          resolved; [false] for duplicates, unknown batches, and unknown
          destinations — all harmless *)
  redundant : bool;
      (** the pair had been re-sent, yet the ACK arrived sooner after
          the last re-send than any clean round trip ever observed on
          the link — the ACK was already in flight, so the re-send was
          wasted *)
  rtt_sample_us : float option;
      (** clean round-trip sample just fed to the destination's
          estimator; [None] when the pair had been re-sent (Karn's
          rule: ambiguous samples are discarded) *)
  rto_us : float option;
      (** the destination's retransmission timeout after this ACK;
          [Some] whenever [settled] *)
}

val ack : t -> verifier:int -> batch_id:int64 -> ack_outcome
(** Record that [verifier] acknowledged [batch_id]. Idempotent:
    duplicate ACKs return [{ settled = false; _ }] and change
    nothing. *)

val note_pressure : t -> dest:int -> pressure:int -> unit
(** Record the back-pressure level [dest] advertised on a
    [Batch.Credit] frame (clamped to [0, 255]). In adaptive mode a
    loaded destination's re-announce interval stretches by up to 4x at
    full pressure — pacing that one link down without starving others
    (the token budget is spread round-robin per destination). The level
    decays after a few RTOs unless refreshed by further Credit frames.
    Fixed mode records the level (visible via {!pressure_level}) but
    does not reschedule. *)

val pressure_level : t -> dest:int -> int
(** [dest]'s live advertised pressure, [0] once it has decayed or for
    destinations that never advertised any. *)

val lookup : t -> batch_id:int64 -> Batch.announcement option
(** Retained announcement for a batch, for serving pull requests. *)

val drop : t -> batch_id:int64 -> int
(** Stop re-announcing a revoked or rotated-out batch: its pending
    transmissions are dropped (returned as a count, recorded in
    {!dropped} — not {!gave_up}) so it stops consuming re-announce
    pacing tokens. The announcement itself stays retained for pull
    repair of previously issued signatures. Unknown batch ids return
    [0]. *)

val drop_before : t -> batch_id:int64 -> int
(** {!drop} every retained batch with id strictly below [batch_id]
    (rotation cutover); returns the total pending transmissions
    dropped. *)

val due : ?now:float -> t -> (int * Batch.announcement) list
(** Destinations whose re-announcement timer has expired, paired with
    the announcement to re-send; advances each one's timer and
    transmission stamps (the caller must actually send them). [now]
    defaults to the tracker's clock.

    Fixed mode: every expired pair is returned; pairs whose retry budget
    is exhausted are dropped (counted in {!gave_up}) instead of
    returned.

    Adaptive mode: expired pairs are interleaved round-robin across
    destinations and emitted while the token bucket allows; pairs that
    find the bucket empty simply stay due for the next poll. Each
    destination's estimator backs off multiplicatively at most once per
    call, and pairs that reached the attempt budget are dropped as given
    up. *)

(** {1 Introspection} *)

val pending : t -> int
(** Outstanding (batch, destination) pairs still awaiting an ACK. *)

val pending_for : t -> batch_id:int64 -> int option
(** Outstanding destinations for one batch; [None] if not retained. *)

val batches : t -> int
(** Batches currently retained. *)

val acked : t -> int
(** ACKs that cleared a pending destination, ever. *)

val gave_up : t -> int
(** Destinations abandoned (budget exhausted or evicted), ever. *)

val redundant : t -> int
(** Re-sends judged redundant by ACK timing, ever. *)

val samples : t -> int
(** Clean RTT samples fed to destination estimators, ever. *)

val dropped : t -> int
(** Pending transmissions discarded by {!drop}, ever. *)

val srtt_us : t -> dest:int -> float option
(** [dest]'s smoothed round-trip estimate; [None] before any clean
    sample. *)

val rto_us : t -> dest:int -> float option
(** [dest]'s current retransmission timeout (including backoff);
    [None] if the destination has never been tracked. *)
