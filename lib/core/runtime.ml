module Merkle = Dsig_merkle.Merkle
module Rng = Dsig_util.Rng
module Tel = Dsig_telemetry.Telemetry
module Tracer = Dsig_telemetry.Tracer
module Metric = Dsig_telemetry.Metric
module Lifecycle = Dsig_telemetry.Lifecycle
module Trace = Dsig_telemetry.Trace_ctx
module Keystate = Dsig_store.Keystate

type prepared = {
  key : Onetime.t;
  batch_id : int64;
  proof : Merkle.proof;
  root_sig : string;
}

(* Foreground-plane telemetry handles, resolved on the creating domain.
   The background domain resolves its own handles inside
   [background_loop], so the two planes write to distinct per-domain
   cells and never contend (the registry merges them at snapshot time). *)
type tel = {
  bundle : Tel.t;
  c_signs : Metric.Counter.t;
  c_waits : Metric.Counter.t;
  c_reann : Metric.Counter.t;
  c_acks : Metric.Counter.t;
  c_redundant : Metric.Counter.t;
  h_sign : Metric.Histogram.t;
  g_queue : Metric.Gauge.t;
  g_rtt : Metric.Gauge.t;
  g_rto : Metric.Gauge.t;
  g_peer_pressure : Metric.Gauge.t;
  (* per-destination pacing series are name-suffixed (no label support
     in the exporters) and resolved lazily, under [mu] *)
  dest_gauges : (int, Metric.Gauge.t * Metric.Gauge.t) Hashtbl.t;
}

type t = {
  cfg : Config.t;
  id : int;
  mu : Mutex.t;
  refill : Condition.t; (* signaled when the queue drops below S *)
  available : Condition.t; (* signaled when keys are pushed *)
  keys : prepared Queue.t;
  announcements : Batch.announcement Queue.t;
  announce : Announce.t; (* ACK tracking, guarded by [mu] *)
  mutable batches : int;
  mutable stopping : bool;
  fg_rng : Rng.t; (* foreground nonces; background domain has its own *)
  mutable domain : unit Domain.t option;
  keystate : Keystate.t option; (* journal has its own lock; both domains use it *)
  store_report : Keystate.report option;
  pool : Dsig_util.Domain_pool.t option; (* keygen fan-out for the background plane *)
  sample_hook : (now_us:float -> unit) option; (* observability tick, see Options *)
  tel : tel;
}

let background_loop cfg ~id ~eddsa ~rng t () =
  let telemetry = t.tel.bundle in
  (* background-plane handles: this domain's private cells *)
  let c_batches = Tel.counter telemetry "dsig_runtime_batches_total" in
  let h_batch = Tel.histogram telemetry "dsig_runtime_batch_gen_us" in
  let batch_counter =
    ref (match t.store_report with Some r -> r.Keystate.next_batch_id | None -> 0L)
  in
  let continue_ = ref true in
  while !continue_ do
    (* wait until a refill is needed or we are asked to stop *)
    Mutex.lock t.mu;
    while (not t.stopping) && Queue.length t.keys >= cfg.Config.queue_threshold do
      Condition.wait t.refill t.mu
    done;
    let stop = t.stopping in
    Mutex.unlock t.mu;
    if stop then continue_ := false
    else begin
      (* the expensive part runs outside the lock: key generation,
         Merkle tree, EdDSA signature *)
      let t0 = Tel.now telemetry in
      Tracer.record_at telemetry.Tel.tracer ~tag:id Tracer.Batch_gen Tracer.Begin t0;
      let batch_id = !batch_counter in
      batch_counter := Int64.add batch_id 1L;
      let batch = Batch.make ~telemetry ?pool:t.pool cfg ~signer_id:id ~batch_id ~eddsa ~rng in
      let ann = Batch.announcement cfg batch in
      (* journal the seal before the keys become reachable by sign *)
      Option.iter (fun ks -> Keystate.seal ks ~batch_id ~size:(Batch.size batch)) t.keystate;
      Mutex.lock t.mu;
      for i = 0 to Batch.size batch - 1 do
        Queue.add
          {
            key = Batch.key batch i;
            batch_id;
            proof = Batch.proof batch i;
            root_sig = Batch.root_signature batch;
          }
          t.keys
      done;
      Queue.add ann t.announcements;
      t.batches <- t.batches + 1;
      Condition.broadcast t.available;
      Mutex.unlock t.mu;
      Metric.Counter.incr c_batches;
      let t1 = Tel.now telemetry in
      Metric.Histogram.add h_batch (t1 -. t0);
      Tracer.record_at telemetry.Tel.tracer ~tag:id Tracer.Batch_gen Tracer.End t1
    end
  done

let create cfg ~id ~eddsa ~seed ?(options = Options.default) () =
  let telemetry = options.Options.telemetry in
  let master = Rng.create seed in
  let bg_rng = Rng.split master in
  let keystate, store_report =
    match options.Options.store with
    | None -> (None, None)
    | Some s -> (
        let store_cfg =
          Keystate.config ~group_commit:s.Options.group_commit ~fsync:s.Options.fsync
            ~checkpoint_every:s.Options.checkpoint_every s.Options.dir
        in
        match Keystate.open_ ~telemetry ~fingerprint:(Config.fingerprint cfg) store_cfg with
        | Error e -> failwith ("Runtime.create: " ^ e)
        | Ok (ks, report) -> (Some ks, Some report))
  in
  let state =
    {
      cfg;
      id;
      mu = Mutex.create ();
      refill = Condition.create ();
      available = Condition.create ();
      keys = Queue.create ();
      announcements = Queue.create ();
      announce =
        Announce.create ~policy:options.Options.retry ~pacing:options.Options.pacing
          ~retain:options.Options.retain ~rng:(Rng.split master)
          ~clock:(fun () -> Tel.now telemetry)
          ();
      batches = 0;
      stopping = false;
      fg_rng = Rng.split master;
      domain = None;
      keystate;
      store_report;
      pool = options.Options.parallel;
      sample_hook = options.Options.sample_hook;
      tel =
        {
          bundle = telemetry;
          c_signs = Tel.counter telemetry "dsig_runtime_signatures_total";
          c_waits = Tel.counter telemetry "dsig_runtime_sign_waits_total";
          c_reann = Tel.counter telemetry "dsig_runtime_reannounces_total";
          c_acks = Tel.counter telemetry "dsig_runtime_acks_total";
          c_redundant = Tel.counter telemetry "dsig_reannounce_redundant_total";
          h_sign = Tel.histogram telemetry "dsig_runtime_sign_us";
          g_queue = Tel.gauge telemetry "dsig_runtime_queue_depth";
          g_rtt = Tel.gauge telemetry "dsig_rtt_us";
          g_rto = Tel.gauge telemetry "dsig_rto_us";
          g_peer_pressure = Tel.gauge telemetry "dsig_runtime_peer_pressure";
          dest_gauges = Hashtbl.create 8;
        };
    }
  in
  state.domain <- Some (Domain.spawn (background_loop cfg ~id ~eddsa ~rng:bg_rng state));
  state

let pop_key t =
  Mutex.lock t.mu;
  if Queue.is_empty t.keys then Metric.Counter.incr t.tel.c_waits;
  while Queue.is_empty t.keys do
    Condition.signal t.refill;
    Condition.wait t.available t.mu
  done;
  let prepared = Queue.pop t.keys in
  Metric.Gauge.set t.tel.g_queue (float_of_int (Queue.length t.keys));
  if Queue.length t.keys < t.cfg.Config.queue_threshold then Condition.signal t.refill;
  Mutex.unlock t.mu;
  prepared

let sign_impl t msg =
  let t0 = Tel.now t.tel.bundle in
  let prepared = pop_key t in
  (* journal the reservation before the signature exists (DESIGN.md §10) *)
  Option.iter
    (fun ks ->
      Keystate.reserve ks ~batch_id:prepared.batch_id ~key_index:prepared.proof.Merkle.index)
    t.keystate;
  let nonce = Rng.bytes t.fg_rng 16 in
  let body =
    match prepared.key with
    | Onetime.Wots_key kp -> Wire.Wots_body (Dsig_hbss.Wots.sign kp ~nonce msg)
    | Onetime.Hors_key _ ->
        invalid_arg "Runtime.sign: HORS configurations not supported by the threaded runtime"
  in
  let wire =
    Wire.encode t.cfg
      {
        Wire.signer_id = t.id;
        batch_id = prepared.batch_id;
        public_seed = Onetime.public_seed prepared.key;
        body;
        batch_proof = prepared.proof;
        root_sig = prepared.root_sig;
      }
  in
  Metric.Counter.incr t.tel.c_signs;
  let t1 = Tel.now t.tel.bundle in
  Metric.Histogram.add t.tel.h_sign (t1 -. t0);
  Tracer.record_at t.tel.bundle.Tel.tracer ~tag:t.id Tracer.Sign_fast Tracer.Begin t0;
  Tracer.record_at t.tel.bundle.Tel.tracer ~tag:t.id Tracer.Sign_fast Tracer.End t1;
  let key_index = prepared.proof.Merkle.index in
  let lc = t.tel.bundle.Tel.lifecycle in
  if Lifecycle.enabled lc then
    Lifecycle.sign lc
      ~trace_id:(Trace.id ~signer:t.id ~batch_id:prepared.batch_id ~key_index)
      ~origin:t.id ~birth_us:t0 ~dur_us:(t1 -. t0);
  (wire, prepared.batch_id, key_index, t0)

let sign t msg =
  let wire, _, _, _ = sign_impl t msg in
  wire

let sign_ctx t msg =
  let wire, batch_id, key_index, t0 = sign_impl t msg in
  (wire, Trace.make ~signer:t.id ~batch_id ~key_index ~origin:t.id ~birth_us:t0)

let queue_depth t =
  Mutex.lock t.mu;
  let n = Queue.length t.keys in
  Mutex.unlock t.mu;
  n

let batches_generated t =
  Mutex.lock t.mu;
  let n = t.batches in
  Mutex.unlock t.mu;
  n

let drain_announcements t =
  Mutex.lock t.mu;
  let anns = List.of_seq (Queue.to_seq t.announcements) in
  Queue.clear t.announcements;
  Mutex.unlock t.mu;
  anns

(* --- announcement control plane (Control_plane.S) ---

   The runtime does not send announcements itself (the embedding
   application distributes what [drain_announcements] returns), so the
   application also reports who it sent to and feeds ACKs/requests back;
   the runtime keeps the shared bookkeeping under its lock. *)

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let track_announcement t ann ~dests = locked t (fun () -> Announce.track t.announce ann ~dests)

let dest_gauges_locked t dest =
  match Hashtbl.find_opt t.tel.dest_gauges dest with
  | Some g -> g
  | None ->
      let g =
        ( Tel.gauge t.tel.bundle (Printf.sprintf "dsig_rtt_us_dest_%d" dest),
          Tel.gauge t.tel.bundle (Printf.sprintf "dsig_rto_us_dest_%d" dest) )
      in
      Hashtbl.add t.tel.dest_gauges dest g;
      g

let observe_rto_locked t ~dest rto =
  let _, g_rto_dest = dest_gauges_locked t dest in
  Metric.Gauge.set t.tel.g_rto rto;
  Metric.Gauge.set g_rto_dest rto

let deliver_ack t (a : Batch.ack) =
  if a.Batch.ack_signer = t.id then begin
    let o =
      locked t (fun () ->
          let o =
            Announce.ack t.announce ~verifier:a.Batch.ack_verifier
              ~batch_id:a.Batch.ack_batch
          in
          if o.Announce.settled then begin
            let dest = a.Batch.ack_verifier in
            (match o.Announce.rtt_sample_us with
            | Some rtt ->
                let g_rtt_dest, _ = dest_gauges_locked t dest in
                Metric.Gauge.set t.tel.g_rtt rtt;
                Metric.Gauge.set g_rtt_dest rtt
            | None -> ());
            match o.Announce.rto_us with
            | Some rto -> observe_rto_locked t ~dest rto
            | None -> ()
          end;
          o)
    in
    if o.Announce.settled then begin
      Metric.Counter.incr t.tel.c_acks;
      if o.Announce.redundant then Metric.Counter.incr t.tel.c_redundant
    end
  end

let note_pressure t ~verifier ~pressure =
  locked t (fun () -> Announce.note_pressure t.announce ~dest:verifier ~pressure);
  Metric.Gauge.set t.tel.g_peer_pressure (float_of_int pressure)

let deliver_request t (r : Batch.request) =
  if r.Batch.req_signer <> t.id then None
  else locked t (fun () -> Announce.lookup t.announce ~batch_id:r.Batch.req_batch)

let step t ~now =
  (* outside [mu]: the hook may take registry snapshots of metrics the
     locked region updates *)
  (match t.sample_hook with Some hook -> hook ~now_us:now | None -> ());
  let due =
    locked t (fun () ->
        let due = Announce.due ~now t.announce in
        List.iter
          (fun (dest, _) ->
            match Announce.rto_us t.announce ~dest with
            | Some rto -> observe_rto_locked t ~dest rto
            | None -> ())
          due;
        due)
  in
  (match due with [] -> () | _ :: _ -> Metric.Counter.incr ~by:(List.length due) t.tel.c_reann);
  due

let unacked_announcements t = locked t (fun () -> Announce.pending t.announce)

let store t = t.keystate
let store_recovery t = t.store_report

let shutdown t =
  Mutex.lock t.mu;
  let was_stopping = t.stopping in
  t.stopping <- true;
  Condition.broadcast t.refill;
  Mutex.unlock t.mu;
  if not was_stopping then begin
    Option.iter Domain.join t.domain;
    (* the background domain is quiescent: safe to seal the journal *)
    Option.iter Keystate.close t.keystate
  end
