module Retry = Dsig_util.Retry
module Rtt = Dsig_util.Rtt
module Tel = Dsig_telemetry.Telemetry

type adaptive = {
  rtt : Rtt.params;
  rate_per_sec : float;
  burst : int;
  max_attempts : int;
}

type pacing = Fixed | Adaptive of adaptive

let adaptive ?(rtt = Rtt.default) ?(rate_per_sec = 2_000.0) ?(burst = 8) ?(max_attempts = 0) () =
  if rate_per_sec <= 0.0 then invalid_arg "Options.adaptive: rate_per_sec must be positive";
  if burst <= 0 then invalid_arg "Options.adaptive: burst must be positive";
  if max_attempts < 0 then invalid_arg "Options.adaptive: max_attempts must be non-negative";
  Adaptive { rtt; rate_per_sec; burst; max_attempts }

type store = { dir : string; group_commit : int; fsync : bool; checkpoint_every : int }

let store ?(group_commit = 8) ?(fsync = true) ?(checkpoint_every = 16) dir =
  if group_commit <= 0 then invalid_arg "Options.store: group_commit must be positive";
  if checkpoint_every < 0 then invalid_arg "Options.store: checkpoint_every must be >= 0";
  { dir; group_commit; fsync; checkpoint_every }

type ack_delay = { cap_us : float; srtt_fraction : float }

type t = {
  telemetry : Tel.t;
  retry : Retry.policy;
  retain : int;
  request_policy : Retry.policy;
  pacing : pacing;
  store : store option;
  ack_delay : ack_delay option;
  translog : (signer:int -> op:string -> signature:string -> unit) option;
  parallel : Dsig_util.Domain_pool.t option;
  sample_hook : (now_us:float -> unit) option;
  loadctl : Dsig_loadctl.Admission.t option;
}

let default =
  {
    telemetry = Tel.default;
    retry = Retry.default;
    retain = 64;
    request_policy = Retry.policy ~base_us:500.0 ~max_attempts:8 ();
    pacing = Fixed;
    store = None;
    ack_delay = None;
    translog = None;
    parallel = None;
    sample_hook = None;
    loadctl = None;
  }

let with_telemetry telemetry t = { t with telemetry }

(* an explicit fixed policy also selects fixed pacing, so pre-Options
   call sites migrate without a behavior change *)
let with_retry retry t = { t with retry; pacing = Fixed }

let with_retain retain t =
  if retain <= 0 then invalid_arg "Options.with_retain: retain must be positive";
  { t with retain }

let with_request_policy request_policy t = { t with request_policy }
let with_pacing pacing t = { t with pacing }
let with_store store t = { t with store = Some store }

let with_ack_delay ?(srtt_fraction = 0.25) ~cap_us t =
  if cap_us < 0.0 then invalid_arg "Options.with_ack_delay: cap_us must be non-negative";
  if srtt_fraction < 0.0 then
    invalid_arg "Options.with_ack_delay: srtt_fraction must be non-negative";
  { t with ack_delay = Some { cap_us; srtt_fraction } }

let with_translog sink t = { t with translog = Some sink }
let with_parallel pool t = { t with parallel = Some pool }
let with_sample_hook hook t = { t with sample_hook = Some hook }
let with_loadctl admission t = { t with loadctl = Some admission }
