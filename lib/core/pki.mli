(** Public-key infrastructure with epoch-versioned bindings (§4.1–4.2).

    The v0 surface was a write-once table standing in for "an
    administrator pre-installing the keys". The key-lifecycle plane
    versions each process id's EdDSA binding by {e epoch}: rotating a
    signer binds a fresh key at the next epoch while the old bindings
    remain on record so previously issued signatures stay auditable.
    All operations are thread-safe — verifiers consult the directory
    from every domain while revocations land concurrently. *)

type t

type binding = { epoch : int; key : Dsig_ed25519.Eddsa.public_key }

type revocation = [ `None | `Total | `From of int64 ]
(** [`From b] bars batches with id [>= b] while earlier batches keep
    verifying — the shape a signed revocation record carries when a
    compromise window is known. [`Total] bars everything. *)

val create : unit -> t

val bind : t -> id:int -> epoch:int -> Dsig_ed25519.Eddsa.public_key -> unit
(** Bind [id]'s key at [epoch]. Re-binding the same (id, epoch) to the
    same key is idempotent.
    @raise Invalid_argument if (id, epoch) is already bound to a
    different key, or [epoch] is negative. *)

val active : t -> int -> binding option
(** The highest-epoch binding for [id], ignoring revocation state (use
    {!allowed} on the verification path). *)

val history : t -> int -> binding list
(** All bindings for [id] in ascending epoch order. *)

val ids : t -> int list
(** Bound, not-totally-revoked ids. *)

(** {1 Revocation (§4.2)}

    "DSig can support key revocation through revocation lists that
    applications check prior to signing or verifying messages."
    Revocation is consulted on the verification path, not baked into
    signatures. *)

val revoke : t -> int -> unit
(** Total revocation: every signature from [id] is rejected, including
    previously issued ones. Idempotent; unknown ids may be revoked
    pre-emptively. Overrides any batch boundary. *)

val revoke_from : t -> id:int -> batch:int64 -> unit
(** Boundary revocation: bar batches with id [>= batch] while earlier
    batches keep verifying. Idempotent; replays only ever tighten the
    boundary (the minimum wins) and never loosen a total revocation. *)

val revocation : t -> int -> revocation
val is_revoked : t -> int -> bool
(** [true] only for total revocation. *)

val revoked : t -> int list
(** Ids with any revocation on record (total or boundary). *)

val allowed : t -> id:int -> batch:int64 -> Dsig_ed25519.Eddsa.public_key option
(** The verification-path gate: [id]'s active key, or [None] if the id
    is unknown, totally revoked, or [batch] falls at or past a
    revocation boundary. *)

(** {1 Deprecated write-once surface}

    Epoch-0 wrappers kept for one release. *)

val register : t -> id:int -> Dsig_ed25519.Eddsa.public_key -> unit
[@@ocaml.deprecated "use Pki.bind ~epoch:0"]
(** [bind ~epoch:0].
    @raise Invalid_argument if [id] is already bound to a different
    key. *)

val lookup : t -> int -> Dsig_ed25519.Eddsa.public_key option
[@@ocaml.deprecated "use Pki.allowed (verification path) or Pki.active"]
(** The active key, or [None] if the id is unknown or totally revoked.
    Ignores batch boundaries — verification paths must use
    {!allowed}. *)
