module Eddsa = Dsig_ed25519.Eddsa
module Rng = Dsig_util.Rng

type party = { signer : Signer.t; verifier : Verifier.t }

type t = { cfg : Config.t; parties : party array; auto_background : bool; pki : Pki.t }

let create ?(groups = fun _ -> []) ?(seed = 7L) ?(auto_background = true) ?options cfg ~n () =
  let pki = Pki.create () in
  let master = Rng.create seed in
  let keys = Array.init n (fun _ -> Eddsa.generate (Rng.split master)) in
  Array.iteri (fun id (_, pk) -> Pki.bind pki ~id ~epoch:0 pk) keys;
  let parties_ref = ref [||] in
  let send ~dest ann =
    let parties = !parties_ref in
    if dest >= 0 && dest < Array.length parties then
      ignore (Verifier.deliver parties.(dest).verifier ann)
  in
  let all = List.init n Fun.id in
  (* in-process transport is lossless, so the reliability loop closes
     immediately: ACKs and pull requests route straight back to the
     target signer through its control plane, and repair replies go
     straight back out *)
  let control c =
    let parties = !parties_ref in
    match Batch.control_target c with
    | Some target when target >= 0 && target < Array.length parties ->
        Control_plane.deliver (Control_plane.of_signer parties.(target).signer) c
        |> List.iter (fun (dest, ann) -> send ~dest ann)
    | Some _ | None -> ()
  in
  let parties =
    Array.init n (fun id ->
        let sk, _ = keys.(id) in
        {
          signer =
            Signer.create cfg ~id ~eddsa:sk ~rng:(Rng.split master) ~send ~groups:(groups id)
              ?options ~verifiers:all ();
          verifier = Verifier.create cfg ~id ~pki ~control ?options ();
        })
  in
  parties_ref := parties;
  let t = { cfg; parties; auto_background; pki } in
  if auto_background then
    Array.iter (fun p -> Signer.background_fill p.signer) parties;
  t

let config t = t.cfg
let n t = Array.length t.parties
let signer t i = t.parties.(i).signer
let verifier t i = t.parties.(i).verifier

let pki t = t.pki

let sign t ~signer:i ?hint msg =
  let s = Signer.sign t.parties.(i).signer ?hint msg in
  if t.auto_background then Signer.background_fill t.parties.(i).signer;
  s

let verify t ~verifier:i ~msg signature = Verifier.verify t.parties.(i).verifier ~msg signature

let pump_background t = Array.iter (fun p -> Signer.background_fill p.signer) t.parties
