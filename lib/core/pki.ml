type binding = { epoch : int; key : Dsig_ed25519.Eddsa.public_key }
type revocation = [ `None | `Total | `From of int64 ]

type t = {
  mu : Mutex.t;
  (* per id, bindings sorted by descending epoch (head = active) *)
  bindings : (int, binding list) Hashtbl.t;
  revoked : (int, [ `Total | `From of int64 ]) Hashtbl.t;
}

let create () =
  { mu = Mutex.create (); bindings = Hashtbl.create 16; revoked = Hashtbl.create 4 }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let bind t ~id ~epoch pk =
  if epoch < 0 then invalid_arg "Pki.bind: epoch must be non-negative";
  locked t @@ fun () ->
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.bindings id) in
  match List.find_opt (fun b -> b.epoch = epoch) existing with
  | Some b when b.key <> pk -> invalid_arg "Pki.bind: (id, epoch) already bound"
  | Some _ -> ()
  | None ->
      let merged =
        List.sort (fun a b -> compare b.epoch a.epoch) ({ epoch; key = pk } :: existing)
      in
      Hashtbl.replace t.bindings id merged

let active t id =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.bindings id with Some (b :: _) -> Some b | _ -> None

let history t id =
  locked t @@ fun () ->
  Option.value ~default:[] (Hashtbl.find_opt t.bindings id) |> List.rev

let revocation t id : revocation =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.revoked id with
  | None -> `None
  | Some (`Total | `From _ as r) -> (r :> revocation)

let is_revoked t id =
  locked t @@ fun () -> Hashtbl.find_opt t.revoked id = Some `Total

let revoke t id = locked t @@ fun () -> Hashtbl.replace t.revoked id `Total

let revoke_from t ~id ~batch =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.revoked id with
  | Some `Total -> ()
  | Some (`From b) when b <= batch -> ()
  | Some (`From _) | None -> Hashtbl.replace t.revoked id (`From batch)

(* The verification-path gate: the key for [id], unless the id is
   totally revoked or [batch] falls at or past a revocation boundary. *)
let allowed t ~id ~batch =
  locked t @@ fun () ->
  let barred =
    match Hashtbl.find_opt t.revoked id with
    | Some `Total -> true
    | Some (`From b) -> batch >= b
    | None -> false
  in
  if barred then None
  else
    match Hashtbl.find_opt t.bindings id with
    | Some (b :: _) -> Some b.key
    | _ -> None

let ids t =
  locked t @@ fun () ->
  Hashtbl.fold
    (fun id bs acc ->
      if bs <> [] && Hashtbl.find_opt t.revoked id <> Some `Total then id :: acc else acc)
    t.bindings []
  |> List.sort compare

let revoked t =
  locked t @@ fun () ->
  Hashtbl.fold (fun id _ acc -> id :: acc) t.revoked [] |> List.sort compare

(* deprecated epoch-0 wrappers *)

let register t ~id pk =
  try bind t ~id ~epoch:0 pk
  with Invalid_argument _ -> invalid_arg "Pki.register: id already bound"

let lookup t id =
  if is_revoked t id then None else Option.map (fun b -> b.key) (active t id)
