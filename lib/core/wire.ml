open Dsig_hbss
module Merkle = Dsig_merkle.Merkle
module BU = Dsig_util.Bytesutil

let magic = '\xD5'
let version = '\x01'
let header_bytes = 4 + 8 + 8
let nonce_bytes = 16
let eddsa_bytes = 64

type body =
  | Wots_body of Wots.signature
  | Hors_fact_body of { hsig : Hors.signature; complement : string array }
  | Hors_merk_body of {
      hsig : Hors.signature;
      roots : string array;
      proofs : (int * Merkle.proof) array;
    }
  | Hors_merk_mp_body of {
      hsig : Hors.signature;
      roots : string array;
      mps : (int * Merkle.Multiproof.t) list; (* (tree, shared proof) *)
    }

type t = {
  signer_id : int;
  batch_id : int64;
  public_seed : string;
  body : body;
  batch_proof : Merkle.proof;
  root_sig : string;
}

let key_index t = t.batch_proof.Merkle.index

(* Proof length (in siblings) of a merklified-HORS per-secret proof. *)
let hors_tree_levels (p : Params.Hors.t) ~trees = Params.log2_exact (p.Params.Hors.t / trees)

let size_bytes (cfg : Config.t) =
  let batch_proof = 4 + (32 * Config.batch_levels cfg) in
  let fixed = header_bytes + 32 (* public seed *) + batch_proof + eddsa_bytes in
  match cfg.Config.hbss with
  | Config.Wots p -> fixed + Wots.signature_wire_bytes p
  | Config.Hors_factorized p ->
      (* k revealed secrets + (t - k) complement elements, distinct case *)
      fixed + nonce_bytes + (p.Params.Hors.t * p.Params.Hors.n)
  | Config.Hors_merklified { params = p; trees } ->
      let per_proof = 2 + 4 + (32 * hors_tree_levels p ~trees) in
      fixed + nonce_bytes
      + (p.Params.Hors.k * p.Params.Hors.n)
      + (trees * 32)
      + (p.Params.Hors.k * per_proof)

let encode (cfg : Config.t) t =
  let buf = Buffer.create (size_bytes cfg) in
  Buffer.add_char buf magic;
  Buffer.add_char buf version;
  Buffer.add_char buf (Char.chr (Config.scheme_tag cfg));
  Buffer.add_char buf (Char.chr (Config.hash_tag cfg));
  Buffer.add_string buf (BU.u64_le (Int64.of_int t.signer_id));
  Buffer.add_string buf (BU.u64_le t.batch_id);
  Buffer.add_string buf t.public_seed;
  (match t.body with
  | Wots_body s ->
      Buffer.add_string buf s.Wots.nonce;
      Array.iter (Buffer.add_string buf) s.Wots.elements
  | Hors_fact_body { hsig; complement } ->
      Buffer.add_string buf hsig.Hors.nonce;
      Array.iter (Buffer.add_string buf) hsig.Hors.revealed;
      Array.iter (Buffer.add_string buf) complement
  | Hors_merk_body { hsig; roots; proofs } ->
      Buffer.add_string buf hsig.Hors.nonce;
      Array.iter (Buffer.add_string buf) hsig.Hors.revealed;
      Array.iter (Buffer.add_string buf) roots;
      Array.iter
        (fun (tree, pf) ->
          Buffer.add_string buf (BU.u16_be tree);
          Buffer.add_string buf (Merkle.encode_proof pf))
        proofs
  | Hors_merk_mp_body { hsig; roots; mps } ->
      Buffer.add_string buf hsig.Hors.nonce;
      Array.iter (Buffer.add_string buf) hsig.Hors.revealed;
      Array.iter (Buffer.add_string buf) roots;
      Buffer.add_char buf (Char.chr (List.length mps));
      List.iter
        (fun (tree, mp) ->
          Buffer.add_string buf (BU.u16_be tree);
          Buffer.add_string buf (Merkle.Multiproof.encode mp))
        mps);
  Buffer.add_string buf (Merkle.encode_proof t.batch_proof);
  Buffer.add_string buf t.root_sig;
  Buffer.contents buf

let peek_header s =
  if String.length s < header_bytes || s.[0] <> magic || s.[1] <> version then None
  else Some (Int64.to_int (BU.get_u64_le s 4), BU.get_u64_le s 12)

(* The batch proof sits at a fixed offset from the end (proof, then the
   64-byte EdDSA root signature) and starts with its u32 LE leaf index,
   so the (signer, batch, key) triple — a signature's trace identity —
   is readable without decoding the body. *)
let peek_trace (cfg : Config.t) s =
  match peek_header s with
  | None -> None
  | Some (signer_id, batch_id) ->
      let proof_bytes = 4 + (32 * Config.batch_levels cfg) in
      let off = String.length s - eddsa_bytes - proof_bytes in
      if off < header_bytes + 32 then None
      else begin
        let idx = Int32.to_int (BU.get_u32_le s off) in
        if idx < 0 then None else Some (signer_id, batch_id, idx)
      end

let decode (cfg : Config.t) s =
  let ( let* ) r f = Result.bind r f in
  let err msg = Error msg in
  let len = String.length s in
  let* () = if len < header_bytes + 32 then err "truncated header" else Ok () in
  let* () = if s.[0] <> magic || s.[1] <> version then err "bad magic/version" else Ok () in
  let* () =
    if Char.code s.[2] <> Config.scheme_tag cfg then err "scheme mismatch"
    else if Char.code s.[3] <> Config.hash_tag cfg then err "hash mismatch"
    else Ok ()
  in
  let signer_id = Int64.to_int (BU.get_u64_le s 4) in
  let batch_id = BU.get_u64_le s 12 in
  let public_seed = String.sub s 20 32 in
  let pos = ref (20 + 32) in
  let take n =
    if !pos + n > len then None
    else begin
      let r = String.sub s !pos n in
      pos := !pos + n;
      Some r
    end
  in
  let take_err n = match take n with Some r -> Ok r | None -> err "truncated" in
  let batch_proof_bytes = 4 + (32 * Config.batch_levels cfg) in
  let trailer = batch_proof_bytes + eddsa_bytes in
  let* body =
    match cfg.Config.hbss with
    | Config.Wots p ->
        let* nonce = take_err nonce_bytes in
        let n = p.Params.Wots.n in
        let* blob = take_err (p.Params.Wots.l * n) in
        let elements = Array.init p.Params.Wots.l (fun i -> String.sub blob (i * n) n) in
        Ok (Wots_body { Wots.nonce; elements })
    | Config.Hors_factorized p ->
        let* nonce = take_err nonce_bytes in
        let n = p.Params.Hors.n in
        let* blob = take_err (p.Params.Hors.k * n) in
        let revealed = Array.init p.Params.Hors.k (fun i -> String.sub blob (i * n) n) in
        let comp_bytes = len - !pos - trailer in
        let* () =
          if comp_bytes < 0 || comp_bytes mod n <> 0 then err "bad complement size" else Ok ()
        in
        let* cblob = take_err comp_bytes in
        let complement = Array.init (comp_bytes / n) (fun i -> String.sub cblob (i * n) n) in
        Ok (Hors_fact_body { hsig = { Hors.nonce; revealed }; complement })
    | Config.Hors_merklified { params = p; trees } when cfg.Config.compress_proofs ->
        let* nonce = take_err nonce_bytes in
        let n = p.Params.Hors.n in
        let* blob = take_err (p.Params.Hors.k * n) in
        let revealed = Array.init p.Params.Hors.k (fun i -> String.sub blob (i * n) n) in
        let* rblob = take_err (trees * 32) in
        let roots = Array.init trees (fun i -> String.sub rblob (i * 32) 32) in
        let* cb = take_err 1 in
        let count = Char.code cb.[0] in
        (* the multiproof region is whatever sits between the cursor and
           the fixed-size trailer; on a truncated frame that span is
           negative and must be rejected, not passed to String.sub *)
        let body_len = len - !pos - trailer in
        let* body_blob = if body_len < 0 then err "truncated" else take_err body_len in
        let rec read_mps blob acc i =
          if i = count then if blob = "" then Ok (List.rev acc) else err "trailing proof bytes"
          else if String.length blob < 2 then err "truncated multiproof"
          else begin
            let tree = BU.get_u16_be blob 0 in
            match Merkle.Multiproof.decode (String.sub blob 2 (String.length blob - 2)) with
            | None -> err "bad multiproof"
            | Some (mp, rest) -> read_mps rest ((tree, mp) :: acc) (i + 1)
          end
        in
        let* mps = read_mps body_blob [] 0 in
        Ok (Hors_merk_mp_body { hsig = { Hors.nonce; revealed }; roots; mps })
    | Config.Hors_merklified { params = p; trees } ->
        let* nonce = take_err nonce_bytes in
        let n = p.Params.Hors.n in
        let* blob = take_err (p.Params.Hors.k * n) in
        let revealed = Array.init p.Params.Hors.k (fun i -> String.sub blob (i * n) n) in
        let* rblob = take_err (trees * 32) in
        let roots = Array.init trees (fun i -> String.sub rblob (i * 32) 32) in
        let levels = hors_tree_levels p ~trees in
        let per_proof = 4 + (32 * levels) in
        let rec read_proofs acc i =
          if i = p.Params.Hors.k then Ok (Array.of_list (List.rev acc))
          else begin
            let* tb = take_err 2 in
            let tree = BU.get_u16_be tb 0 in
            let* pb = take_err per_proof in
            match Merkle.decode_proof ~levels pb with
            | None -> err "bad hors proof"
            | Some pf -> read_proofs ((tree, pf) :: acc) (i + 1)
          end
        in
        let* proofs = read_proofs [] 0 in
        Ok (Hors_merk_body { hsig = { Hors.nonce; revealed }; roots; proofs })
  in
  let* bp = take_err batch_proof_bytes in
  let* batch_proof =
    match Merkle.decode_proof ~levels:(Config.batch_levels cfg) bp with
    | None -> err "bad batch proof"
    | Some pf ->
        if pf.Merkle.index >= cfg.Config.batch_size then err "batch index out of range" else Ok pf
  in
  let* root_sig = take_err eddsa_bytes in
  let* () = if !pos <> len then err "trailing bytes" else Ok () in
  Ok { signer_id; batch_id; public_seed; body; batch_proof; root_sig }
