(** One configuration record for the DSig component constructors.

    {!Signer.create}, {!Runtime.create} and {!Verifier.create} used to
    grow one optional argument per knob ([?telemetry ?retry ?retain
    ?request_policy ...]); they now take a single [?options] record
    built by piping {!default} through the [with_*] combinators:

    {[
      let opts =
        Options.default
        |> Options.with_telemetry tel
        |> Options.with_pacing (Options.adaptive ())
      in
      let signer = Signer.create cfg ~id ~eddsa ~rng ~options:opts ~verifiers ()
    ]}

    Each component reads the fields that concern it and ignores the
    rest, so one record configures a whole deployment ({!System},
    [Dsig_deploy.Deploy]). The old constructors survive one release as
    deprecated [create_legacy] shims. *)

(** {1 Re-announce pacing} *)

type adaptive = {
  rtt : Dsig_util.Rtt.params;  (** per-destination estimator constants *)
  rate_per_sec : float;  (** token-bucket re-announce rate, per signer *)
  burst : int;  (** token-bucket capacity *)
  max_attempts : int;  (** re-sends before abandoning; [0] = unlimited *)
}

(** How a signer schedules re-announcements of unACKed batches. *)
type pacing =
  | Fixed
      (** the global {!Dsig_util.Retry} backoff ladder from the [retry]
          field — blind to the network, identical for every
          destination *)
  | Adaptive of adaptive
      (** per-destination RFC-6298 RTOs from observed ACK round trips
          ({!Dsig_util.Rtt}), spread by a token bucket
          ({!Dsig_util.Pacer}); see DESIGN.md §9 *)

val adaptive :
  ?rtt:Dsig_util.Rtt.params ->
  ?rate_per_sec:float ->
  ?burst:int ->
  ?max_attempts:int ->
  unit ->
  pacing
(** Adaptive pacing with defaults: {!Dsig_util.Rtt.default} constants,
    2000 re-announcements/s, burst 8, unlimited attempts.
    @raise Invalid_argument on a non-positive rate or burst, or a
    negative attempt budget. *)

(** {1 The options record} *)

type t = {
  telemetry : Dsig_telemetry.Telemetry.t;  (** metric/tracer/clock bundle *)
  retry : Dsig_util.Retry.policy;  (** fixed-mode re-announce backoff *)
  retain : int;  (** batches kept for re-announce / pull repair *)
  request_policy : Dsig_util.Retry.policy;  (** verifier pull-repair pacing *)
  pacing : pacing;
}

val default : t
(** {!Dsig_telemetry.Telemetry.default}, {!Dsig_util.Retry.default},
    retain 64, the verifier's historical request policy (500 µs base,
    8 attempts), and [Fixed] pacing — exactly the pre-Options
    behavior. *)

val with_telemetry : Dsig_telemetry.Telemetry.t -> t -> t

val with_retry : Dsig_util.Retry.policy -> t -> t
(** Sets the fixed re-announce policy {e and} selects [Fixed] pacing:
    call sites that chose an explicit ladder keep their exact behavior.
    Combine with {!with_pacing} afterwards to override. *)

val with_retain : int -> t -> t
(** @raise Invalid_argument if not positive. *)

val with_request_policy : Dsig_util.Retry.policy -> t -> t
val with_pacing : pacing -> t -> t
