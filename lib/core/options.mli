(** One configuration record for the DSig component constructors.

    {!Signer.create}, {!Runtime.create} and {!Verifier.create} used to
    grow one optional argument per knob ([?telemetry ?retry ?retain
    ?request_policy ...]); they now take a single [?options] record
    built by piping {!default} through the [with_*] combinators:

    {[
      let opts =
        Options.default
        |> Options.with_telemetry tel
        |> Options.with_pacing (Options.adaptive ())
      in
      let signer = Signer.create cfg ~id ~eddsa ~rng ~options:opts ~verifiers ()
    ]}

    Each component reads the fields that concern it and ignores the
    rest, so one record configures a whole deployment ({!System},
    [Dsig_deploy.Deploy]). This is the only constructor surface — the
    pre-[Options] [create_legacy] shims and per-knob arguments are
    gone. *)

(** {1 Re-announce pacing} *)

type adaptive = {
  rtt : Dsig_util.Rtt.params;  (** per-destination estimator constants *)
  rate_per_sec : float;  (** token-bucket re-announce rate, per signer *)
  burst : int;  (** token-bucket capacity *)
  max_attempts : int;  (** re-sends before abandoning; [0] = unlimited *)
}

(** How a signer schedules re-announcements of unACKed batches. *)
type pacing =
  | Fixed
      (** the global {!Dsig_util.Retry} backoff ladder from the [retry]
          field — blind to the network, identical for every
          destination *)
  | Adaptive of adaptive
      (** per-destination RFC-6298 RTOs from observed ACK round trips
          ({!Dsig_util.Rtt}), spread by a token bucket
          ({!Dsig_util.Pacer}); see DESIGN.md §9 *)

val adaptive :
  ?rtt:Dsig_util.Rtt.params ->
  ?rate_per_sec:float ->
  ?burst:int ->
  ?max_attempts:int ->
  unit ->
  pacing
(** Adaptive pacing with defaults: {!Dsig_util.Rtt.default} constants,
    2000 re-announcements/s, burst 8, unlimited attempts.
    @raise Invalid_argument on a non-positive rate or burst, or a
    negative attempt budget. *)

(** {1 Durable key state} *)

(** Where and how a signer persists its key-state journal (see
    {!Dsig_store.Keystate}). Kept as a plain record so [Options] can be
    built without touching the store library. *)
type store = {
  dir : string;  (** store directory, created on first open *)
  group_commit : int;  (** journal appends coalesced per fsync *)
  fsync : bool;  (** [false] skips physical fsync (tests, benches) *)
  checkpoint_every : int;  (** snapshot cadence in sealed batches; 0 = never *)
}

val store : ?group_commit:int -> ?fsync:bool -> ?checkpoint_every:int -> string -> store
(** Defaults: group commit 8, fsync on, checkpoint every 16 seals.
    @raise Invalid_argument on a non-positive group commit or a negative
    checkpoint cadence. *)

(** {1 ACK batching} *)

(** How long a verifier may hold announcement ACKs to coalesce them into
    one [Batch.Acks] frame. The delay adapts to the observed path: it is
    [srtt_fraction] of the verifier's smoothed announce RTT, capped at
    [cap_us] — so batching never holds an ACK long enough to look like a
    loss to the signer's re-announce ladder. *)
type ack_delay = {
  cap_us : float;  (** hard upper bound on ACK hold time, microseconds *)
  srtt_fraction : float;  (** fraction of SRTT actually waited *)
}

(** {1 The options record} *)

type t = {
  telemetry : Dsig_telemetry.Telemetry.t;  (** metric/tracer/clock bundle *)
  retry : Dsig_util.Retry.policy;  (** fixed-mode re-announce backoff *)
  retain : int;  (** batches kept for re-announce / pull repair *)
  request_policy : Dsig_util.Retry.policy;  (** verifier pull-repair pacing *)
  pacing : pacing;
  store : store option;  (** [None] (default) = in-memory key state only *)
  ack_delay : ack_delay option;  (** [None] (default) = ACK immediately *)
  translog : (signer:int -> op:string -> signature:string -> unit) option;
      (** transparency sink: called once per issued signature, after the
          wire encoding exists ([None] (default) = no transparency log) *)
  parallel : Dsig_util.Domain_pool.t option;
      (** worker-domain pool for batch signing/verifying ([None]
          (default) = everything on the calling domain) *)
  sample_hook : (now_us:float -> unit) option;
      (** observability tick: called at the top of every control-plane
          [step ~now] with that step's clock ([None] (default) = no
          hook) *)
  loadctl : Dsig_loadctl.Admission.t option;
      (** verifier-side admission controller ([None] (default) = admit
          everything): work is classified fast-verify / slow-repair /
          control and may be shed before any crypto runs, and ACKs are
          upgraded to [Batch.Credit] frames carrying the pressure byte
          (see DESIGN.md §15) *)
}

val default : t
(** {!Dsig_telemetry.Telemetry.default}, {!Dsig_util.Retry.default},
    retain 64, the verifier's historical request policy (500 µs base,
    8 attempts), and [Fixed] pacing — exactly the pre-Options
    behavior. *)

val with_telemetry : Dsig_telemetry.Telemetry.t -> t -> t

val with_retry : Dsig_util.Retry.policy -> t -> t
(** Sets the fixed re-announce policy {e and} selects [Fixed] pacing:
    call sites that chose an explicit ladder keep their exact behavior.
    Combine with {!with_pacing} afterwards to override. *)

val with_retain : int -> t -> t
(** @raise Invalid_argument if not positive. *)

val with_request_policy : Dsig_util.Retry.policy -> t -> t
val with_pacing : pacing -> t -> t

val with_store : store -> t -> t
(** Persist signer key state under [store.dir]: batch seals and key
    reservations are journaled before signatures leave the process, so a
    restarted signer never reuses a one-time key (see DESIGN.md §10). *)

val with_ack_delay : ?srtt_fraction:float -> cap_us:float -> t -> t
(** Let verifiers hold ACKs up to [min cap_us (srtt_fraction * srtt)]
    (default fraction 0.25) and coalesce them into [Batch.Acks] frames.
    [cap_us = 0.] restores immediate ACKs.
    @raise Invalid_argument on a negative cap or fraction. *)

val with_translog : (signer:int -> op:string -> signature:string -> unit) -> t -> t
(** Record every signature the signer issues in a transparency log. The
    sink receives the signer id, the signed message and the full wire
    signature, synchronously on the signing path; it is a plain closure
    (not a [Dsig_translog.Translog.t]) so the core stays free of a
    dependency on the log — deployments pass
    [fun ~signer ~op ~signature -> ignore (Translog.append log ~signer ~op ~signature)]
    (see DESIGN.md §11). The sink must not raise; an exception here
    fails the sign call. *)

val with_parallel : Dsig_util.Domain_pool.t -> t -> t
(** Shard batch work over a {!Dsig_util.Domain_pool}: signers build
    one-time keys and signature bodies on worker domains (key-index
    ranges map to shards, so no two domains ever touch the same key),
    and verifiers classify signatures / batch-verify announcement roots
    on worker domains, with all accounting and control-plane sends
    folded back on the calling domain (see DESIGN.md §12). The pool is
    shared, not owned: callers create it once and [shutdown] it
    themselves after every component using it is done. *)

val with_sample_hook : (now_us:float -> unit) -> t -> t
(** Piggyback an observability tick on the component's control-plane
    pump: every [Signer.step] / [Runtime.step] call invokes the hook
    first with its [~now]. Deployments use this to drive a
    [Dsig_timeseries.Sampler] (and its alerter) off whatever clock
    already paces re-announcements — simnet virtual time under
    [Dsig_deploy], wall time in [examples/tcp_service] — without a
    dedicated timer thread. The hook runs on the stepping thread and
    must not raise; keep it cheap (samplers throttle themselves via
    [interval_us]). *)

val with_loadctl : Dsig_loadctl.Admission.t -> t -> t
(** Attach an admission controller to the verifier built from these
    options. One controller per verifier: sharing an instance across
    verifiers pools their admitted rate, which is almost never what a
    deployment wants (per-node capacity differs). *)
