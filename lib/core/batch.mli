(** EdDSA-signed batches of HBSS public keys (§4.4 "Amortizing the cost
    of EdDSA signatures").

    The signer's background plane generates [batch_size] key pairs,
    arranges their 32-byte public-key digests as the leaves of a BLAKE3
    Merkle tree and EdDSA-signs the root (bound to the signer id and a
    monotonically increasing batch id). Signing a message then merely
    attaches the key's precomputed inclusion proof; verifying checks the
    proof against a pre-verified root. *)

type t

val make :
  ?telemetry:Dsig_telemetry.Telemetry.t ->
  ?pool:Dsig_util.Domain_pool.t ->
  Config.t ->
  signer_id:int ->
  batch_id:int64 ->
  eddsa:Dsig_ed25519.Eddsa.secret_key ->
  rng:Dsig_util.Rng.t ->
  t
(** Records [dsig_batch_keygen_us] / [dsig_batch_eddsa_sign_us]
    histograms, the [dsig_batch_generated_total] counter, and an
    [eddsa_sign] tracer span on [telemetry] (default
    {!Dsig_telemetry.Telemetry.default}).

    With [pool], one-time key generation (the dominant cost) is sharded
    over the pool's worker domains. All key seeds are drawn from [rng]
    sequentially before the fan-out, so the resulting batch is
    byte-identical to the single-domain one for the same rng state. *)

val batch_id : t -> int64
val root : t -> string
val root_signature : t -> string
val size : t -> int
val key : t -> int -> Onetime.t
val proof : t -> int -> Dsig_merkle.Merkle.proof
val leaves : t -> string array

val root_message : signer_id:int -> batch_id:int64 -> root:string -> string
(** The exact byte string whose EdDSA signature authenticates a batch;
    binding the signer and batch ids prevents cross-batch splicing. *)

(** {1 Background-plane announcements} *)

type announcement = {
  signer_id : int;
  ann_batch_id : int64;
  root_sig : string;
  ann_leaves : string array;  (** 32-byte digests; always present *)
  full_keys : (string * string array) array option;
      (** (public_seed, elements) per key, present only when background
          bandwidth reduction is disabled (§4.4 / merklified HORS) *)
}

val announcement : Config.t -> t -> announcement
val announcement_wire_bytes : Config.t -> int
(** Modeled network size of one announcement (used by the simulator):
    header + signature + per-key payload. *)

val encode_announcement : announcement -> string
val decode_announcement : string -> (announcement, string) result
(** Byte-level announcement encoding for real transports
    ({!Dsig_tcpnet}): signer and batch ids, root signature, leaf
    digests, and optional full keys. *)

(** {1 Announcement-plane control messages}

    The reliability layer of the announcement plane: a verifier that
    accepted an announcement replies with an {!ack}; a verifier whose
    foreground plane hit the slow path for an unknown [(signer, batch)]
    emits a {!request} so the signer can re-announce the batch (pull
    repair). Both are tiny fixed-size frames. *)

type ack = { ack_verifier : int; ack_signer : int; ack_batch : int64 }
type request = { req_verifier : int; req_signer : int; req_batch : int64 }

type control =
  | Ack of ack
  | Request of request
  | Acks of ack list
      (** Several ACKs for {e one} signer in a single frame (count-prefixed
          body) — what {!Dsig.Verifier.deliver_many} emits after a
          catch-up so a wide fan-out costs one reverse frame per signer
          instead of one per batch. Single-[Ack] frames stay decodable. *)
  | Credit of { pressure : int; acks : ack list }
      (** The [Acks] frame extended with the verifier's back-pressure
          byte ([0..255], see {!Dsig_loadctl.Admission.pressure}) — what
          a verifier running admission control emits instead of
          [Ack]/[Acks], so load information rides the existing ACK wire
          for free. Old-format ['K']/['M'] frames remain decodable for
          mixed-version fleets. *)

val control_wire_bytes : int
(** Encoded size of an [Ack]/[Request] (tag + three u64 fields). *)

val control_bytes : control -> int
(** Encoded size of any control message ([Acks] frames are
    [3 + 24 * count] bytes, [Credit] frames one byte more). *)

val control_target : control -> int option
(** The signer a control frame must be routed to ([None] only for an
    empty [Acks]/[Credit]; both carry acks for a single signer). *)

val max_acks_per_frame : int

val encode_control : control -> string
val decode_control : string -> (control, string) result
(** Total: never raises, rejects wrong sizes, unknown tags, and [Acks]
    counts above {!max_acks_per_frame}. *)
