(** The signer-side announcement control plane, as one first-class
    surface.

    Both signer flavors — the in-simulation {!Signer} and the threaded
    {!Runtime} — expose the same three entry points: feed an inbound ACK
    ({!deliver_ack}), answer a pull-repair request ({!deliver_request}),
    and poll for due re-announcements ({!step}). None of them sends
    anything; they return what to send, so any transport (simnet loops,
    TCP servers, in-process loopback) can drive either implementation
    through one code path. *)

(** What it takes to be a signer-side control plane. {!Signer} and
    {!Runtime} both satisfy this signature. *)
module type S = sig
  type t

  val deliver_ack : t -> Batch.ack -> unit
  (** Record a verifier's acknowledgement; idempotent. *)

  val deliver_request : t -> Batch.request -> Batch.announcement option
  (** The retained announcement to re-send to the requesting verifier,
      or [None] when not retained / not this signer. *)

  val note_pressure : t -> verifier:int -> pressure:int -> unit
  (** Record the back-pressure byte a verifier piggybacked on a
      [Batch.Credit] frame (loadctl plane, DESIGN.md §15). *)

  val step : t -> now:float -> (int * Batch.announcement) list
  (** Re-announcements due at [now] (telemetry time base), as
      [(destination, announcement)] pairs the caller must send. *)
end

type t
(** A control plane with its implementation hidden — pass signers and
    runtimes through the same plumbing. *)

val of_signer : Signer.t -> t
val of_runtime : Runtime.t -> t

(** {1 Forwarders} *)

val deliver_ack : t -> Batch.ack -> unit
val deliver_request : t -> Batch.request -> Batch.announcement option
val note_pressure : t -> verifier:int -> pressure:int -> unit
val step : t -> now:float -> (int * Batch.announcement) list

val deliver : t -> Batch.control -> (int * Batch.announcement) list
(** Dispatch a decoded control frame: ACKs (single or batched) are
    absorbed, [Credit] frames additionally record the sender's
    back-pressure byte, requests yield the
    [(destination, announcement)] repair replies for the caller to
    send. *)
