(** An append-only RFC-6962-style Merkle tree — the data structure under
    the transparency log ({!Dsig_translog}).

    Unlike {!Merkle}, which builds a padded power-of-two tree over a
    fixed leaf array, a log tree grows one leaf at a time and never
    pads: the root of [n] leaves is the Merkle Tree Hash of RFC 6962
    §2.1 (split at the largest power of two strictly smaller than [n]).
    The same domain tags as {!Merkle} are used — [0x00] before a leaf,
    [0x01] before an interior node — which coincide with the RFC 6962
    leaf/node prefixes.

    The tree keeps every perfect-subtree digest it has ever computed
    (about [2n] hashes for [n] leaves), so {!root_at}, {!inclusion_proof}
    and {!consistency_proof} all run in O(log n) hashes with no
    re-hashing of leaf content. Appends are amortized O(1).

    Verification ({!verify_inclusion}, {!verify_consistency}) follows
    the index-arithmetic algorithms of RFC 9162 §2.1.3.2/§2.1.4.2 and
    needs only the proof, never the tree. *)

type t

val create : ?hash:(string -> string) -> unit -> t
(** An empty log tree. [hash] defaults to 32-byte BLAKE3 and must
    produce 32-byte digests. *)

val append : t -> string -> int
(** [append t leaf] hashes [leaf] (with the [0x00] tag) into the tree
    and returns its index ([size] before the append). *)

val append_hash : t -> string -> int
(** Like {!append} for a pre-computed 32-byte leaf digest (recovery
    replay from stored digests).
    @raise Invalid_argument if the digest is not 32 bytes. *)

val size : t -> int
val leaf_hash : t -> int -> string
(** @raise Invalid_argument if the index is out of range. *)

val root : t -> string
(** Root over the current [size] leaves. The empty tree's root is
    [hash ""] (RFC 6962). *)

val root_at : t -> int -> string
(** [root_at t m] is the root the tree had when it held its first [m]
    leaves. [root_at t (size t) = root t].
    @raise Invalid_argument unless [0 <= m <= size t]. *)

(** {1 Inclusion proofs} *)

type proof = string list
(** Sibling digests, leaf-to-root order (RFC 6962 audit path /
    consistency proof node list). *)

val inclusion_proof : t -> ?size:int -> index:int -> unit -> proof
(** Audit path for leaf [index] within the tree of the first [size]
    leaves (default: the current size).
    @raise Invalid_argument unless [0 <= index < size <= size t]. *)

val verify_inclusion :
  ?hash:(string -> string) ->
  root:string ->
  size:int ->
  index:int ->
  leaf:string ->
  proof ->
  bool
(** Recompute the root of a [size]-leaf tree from [leaf] (content, not
    digest) at [index] and the audit path; compare with [root] in
    constant time. Total: malformed sizes/indices/paths return [false]. *)

(** {1 Consistency proofs} *)

val consistency_proof : t -> old_size:int -> new_size:int -> proof
(** Proof that the tree of the first [new_size] leaves is an append-only
    extension of the tree of the first [old_size] leaves.
    @raise Invalid_argument unless [0 < old_size <= new_size <= size t]. *)

val verify_consistency :
  ?hash:(string -> string) ->
  old_root:string ->
  old_size:int ->
  new_root:string ->
  new_size:int ->
  proof ->
  bool
(** Check both roots against the proof (RFC 9162 §2.1.4.2). Equal sizes
    require an empty proof and equal roots. Total. *)

(** {1 Wire encoding} *)

val encode_proof : proof -> string
(** [u16 count] then 32-byte digests, a few hundred bytes at most. *)

val decode_proof : string -> (proof * string) option
(** Parse a proof from the front of a string, returning the remainder;
    [None] on malformed input (bad count, short digests). *)
