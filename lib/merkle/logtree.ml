let default_hash s = Dsig_hashes.Blake3.digest s

(* same domain separation as Merkle — and as RFC 6962 *)
let leaf_tag = "\x00"
let node_tag = "\x01"

(* minimal growable array; nodes at every level complete strictly in
   index order, so push-only suffices *)
type dyn = { mutable arr : string array; mutable len : int }

let dyn_create () = { arr = Array.make 8 ""; len = 0 }

let dyn_push d s =
  if d.len = Array.length d.arr then begin
    let b = Array.make (2 * Array.length d.arr) "" in
    Array.blit d.arr 0 b 0 d.len;
    d.arr <- b
  end;
  d.arr.(d.len) <- s;
  d.len <- d.len + 1

type t = {
  hash : string -> string;
  mutable levels : dyn array;
      (** [levels.(k).(i)] = digest of leaves [[i*2^k, (i+1)*2^k)],
          present for every complete such range *)
  mutable n : int;
}

let create ?(hash = default_hash) () = { hash; levels = [| dyn_create () |]; n = 0 }

let size t = t.n

let leaf_hash t i =
  if i < 0 || i >= t.n then invalid_arg "Logtree.leaf_hash: index out of range";
  t.levels.(0).arr.(i)

let ensure_level t k =
  if k >= Array.length t.levels then begin
    let b = Array.init (k + 1) (fun i -> if i < Array.length t.levels then t.levels.(i) else dyn_create ()) in
    t.levels <- b
  end

(* node (k, i) just completed; if it closes a pair, its parent completes *)
let rec bubble t k i =
  if i land 1 = 1 then begin
    let l = t.levels.(k) in
    let parent = t.hash (node_tag ^ l.arr.(i - 1) ^ l.arr.(i)) in
    ensure_level t (k + 1);
    dyn_push t.levels.(k + 1) parent;
    bubble t (k + 1) (i / 2)
  end

let append_hash t digest =
  if String.length digest <> 32 then invalid_arg "Logtree.append_hash: digest must be 32 bytes";
  let i = t.n in
  dyn_push t.levels.(0) digest;
  bubble t 0 i;
  t.n <- t.n + 1;
  i

let append t leaf = append_hash t (t.hash (leaf_tag ^ leaf))

(* largest power of two strictly smaller than len (len >= 2) *)
let split_point len =
  let rec go p = if 2 * p < len then go (2 * p) else p in
  go 1

let is_pow2 x = x land (x - 1) = 0

(* log2 of a power of two *)
let log2 x =
  let rec go k v = if v <= 1 then k else go (k + 1) (v lsr 1) in
  go 0 x

(* Merkle Tree Hash of leaves [lo, hi) (RFC 6962 §2.1). Every recursion
   splits at the largest power of two below the range length, so ranges
   whose left edge is subtree-aligned resolve to stored digests in O(1)
   and the whole computation is O(log n). *)
let rec mth t lo hi =
  let len = hi - lo in
  if len = 1 then t.levels.(0).arr.(lo)
  else if is_pow2 len && lo mod len = 0 then t.levels.(log2 len).arr.(lo / len)
  else begin
    let k = split_point len in
    t.hash (node_tag ^ mth t lo (lo + k) ^ mth t (lo + k) hi)
  end

let root_at t m =
  if m < 0 || m > t.n then invalid_arg "Logtree.root_at: size out of range";
  if m = 0 then t.hash "" else mth t 0 m

let root t = root_at t t.n

type proof = string list

(* RFC 6962 §2.1.1 audit path, generalized to subranges for the
   recursion (the left split of an aligned range stays aligned) *)
let rec path t m lo hi =
  if hi - lo <= 1 then []
  else begin
    let k = split_point (hi - lo) in
    if m < lo + k then path t m lo (lo + k) @ [ mth t (lo + k) hi ]
    else path t m (lo + k) hi @ [ mth t lo (lo + k) ]
  end

let inclusion_proof t ?size ~index () =
  let size = Option.value ~default:t.n size in
  if size <= 0 || size > t.n then invalid_arg "Logtree.inclusion_proof: size out of range";
  if index < 0 || index >= size then invalid_arg "Logtree.inclusion_proof: index out of range";
  path t index 0 size

(* RFC 6962 §2.1.2 SUBPROOF *)
let rec subproof t m lo hi b =
  if m = hi - lo then if b then [] else [ mth t lo hi ]
  else begin
    let k = split_point (hi - lo) in
    if m <= k then subproof t m lo (lo + k) b @ [ mth t (lo + k) hi ]
    else subproof t (m - k) (lo + k) hi false @ [ mth t lo (lo + k) ]
  end

let consistency_proof t ~old_size ~new_size =
  if old_size <= 0 then invalid_arg "Logtree.consistency_proof: old_size must be positive";
  if new_size < old_size || new_size > t.n then
    invalid_arg "Logtree.consistency_proof: size out of range";
  if old_size = new_size then [] else subproof t old_size 0 new_size true

(* RFC 9162 §2.1.3.2 *)
let verify_inclusion ?(hash = default_hash) ~root ~size ~index ~leaf proof =
  if index < 0 || size <= 0 || index >= size then false
  else begin
    let fn = ref index and sn = ref (size - 1) in
    let r = ref (hash (leaf_tag ^ leaf)) in
    let ok = ref true in
    List.iter
      (fun p ->
        if !ok then begin
          if !sn = 0 then ok := false
          else begin
            if !fn land 1 = 1 || !fn = !sn then begin
              r := hash (node_tag ^ p ^ !r);
              if !fn land 1 = 0 then
                while !fn <> 0 && !fn land 1 = 0 do
                  fn := !fn lsr 1;
                  sn := !sn lsr 1
                done
            end
            else r := hash (node_tag ^ !r ^ p);
            fn := !fn lsr 1;
            sn := !sn lsr 1
          end
        end)
      proof;
    !ok && !sn = 0 && Dsig_util.Bytesutil.equal_ct !r root
  end

(* RFC 9162 §2.1.4.2 *)
let verify_consistency ?(hash = default_hash) ~old_root ~old_size ~new_root ~new_size proof =
  if old_size <= 0 || new_size < old_size then false
  else if old_size = new_size then
    proof = [] && Dsig_util.Bytesutil.equal_ct old_root new_root
  else begin
    (* a complete old tree is its own first proof element *)
    let proof = if is_pow2 old_size then old_root :: proof else proof in
    match proof with
    | [] -> false
    | first :: rest ->
        let fn = ref (old_size - 1) and sn = ref (new_size - 1) in
        while !fn land 1 = 1 do
          fn := !fn lsr 1;
          sn := !sn lsr 1
        done;
        let fr = ref first and sr = ref first in
        let ok = ref true in
        List.iter
          (fun c ->
            if !ok then begin
              if !sn = 0 then ok := false
              else begin
                if !fn land 1 = 1 || !fn = !sn then begin
                  fr := hash (node_tag ^ c ^ !fr);
                  sr := hash (node_tag ^ c ^ !sr);
                  if !fn land 1 = 0 then
                    while !fn <> 0 && !fn land 1 = 0 do
                      fn := !fn lsr 1;
                      sn := !sn lsr 1
                    done
                end
                else sr := hash (node_tag ^ !sr ^ c);
                fn := !fn lsr 1;
                sn := !sn lsr 1
              end
            end)
          rest;
        !ok && !sn = 0
        && Dsig_util.Bytesutil.equal_ct !fr old_root
        && Dsig_util.Bytesutil.equal_ct !sr new_root
  end

(* --- wire --- *)

let max_proof_nodes = 128

let encode_proof proof =
  let n = List.length proof in
  if n > max_proof_nodes then invalid_arg "Logtree.encode_proof: proof too long";
  Dsig_util.Bytesutil.concat (Dsig_util.Bytesutil.u16_be n :: proof)

let decode_proof s =
  let module BU = Dsig_util.Bytesutil in
  let len = String.length s in
  if len < 2 then None
  else begin
    let n = BU.get_u16_be s 0 in
    if n > max_proof_nodes || 2 + (32 * n) > len then None
    else begin
      let nodes = List.init n (fun i -> String.sub s (2 + (32 * i)) 32) in
      Some (nodes, String.sub s (2 + (32 * n)) (len - 2 - (32 * n)))
    end
  end
