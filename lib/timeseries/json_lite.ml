type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))
let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected '%s'" word)

let parse_string_body c =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> fail c "unterminated escape"
        | Some e ->
            advance c;
            (match e with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if c.pos + 4 > String.length c.src then fail c "short \\u escape";
                let hex = String.sub c.src c.pos 4 in
                c.pos <- c.pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail c "bad \\u escape"
                in
                (* enough for the control characters our own emitters
                   produce; anything outside Latin-1 degrades to '?' *)
                if code < 256 then Buffer.add_char buf (Char.chr code)
                else Buffer.add_char buf '?'
            | _ -> fail c "bad escape");
            go ())
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek c with
    | Some ch when is_num_char ch ->
        advance c;
        go ()
    | _ -> ()
  in
  go ();
  if c.pos = start then fail c "expected number";
  match float_of_string_opt (String.sub c.src start (c.pos - start)) with
  | Some f -> Num f
  | None -> fail c "malformed number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws c;
          expect c '"';
          let key = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              members ((key, v) :: acc)
          | Some '}' ->
              advance c;
              List.rev ((key, v) :: acc)
          | _ -> fail c "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              elements (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> fail c "expected ',' or ']'"
        in
        List (elements [])
      end
  | Some '"' ->
      advance c;
      Str (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let parse s =
  let c = { src = s; pos = 0 } in
  try
    let v = parse_value c in
    skip_ws c;
    if c.pos <> String.length s then Error "trailing garbage after JSON value"
    else Ok v
  with Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function
  | Num f -> Some f
  | _ -> None

let to_string = function
  | Str s -> Some s
  | _ -> None

let to_list = function
  | List l -> Some l
  | _ -> None

let to_obj = function
  | Obj o -> Some o
  | _ -> None
