type direction = Lower_better | Higher_better | Informational

let direction_name = function
  | Lower_better -> "lower-better"
  | Higher_better -> "higher-better"
  | Informational -> "informational"

let has_suffix s suf =
  let ls = String.length s and lf = String.length suf in
  ls >= lf && String.sub s (ls - lf) lf = suf

let contains s sub =
  let ls = String.length s and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
  lb = 0 || go 0

(* name-based heuristics matching the bench suite's conventions:
   latencies end in _us, throughputs carry _ops_per_sec, scaling
   factors carry _speedup, goodput-retention fractions carry
   _retention, shed fractions carry _shed_ratio; anything else (entry
   counts, append totals) is tracked but never gates *)
let direction_of_name name =
  if contains name "_ops_per_sec" || contains name "_speedup" || contains name "_retention"
  then Higher_better
  else if has_suffix name "_us" || contains name "_shed_ratio" then Lower_better
  else Informational

type verdict = Within | Improved | Regressed | New_metric | Missing_metric

let verdict_name = function
  | Within -> "ok"
  | Improved -> "improved"
  | Regressed -> "REGRESSED"
  | New_metric -> "new"
  | Missing_metric -> "MISSING"

type entry = {
  e_name : string;
  e_direction : direction;
  e_base : float option;
  e_fresh : float option;
  e_delta_pct : float option;
  e_tolerance : float;
  e_verdict : verdict;
}

let default_tolerance = 0.5

let judge direction ~base ~fresh ~tolerance =
  if base = 0.0 then Within (* relative bands are meaningless at zero *)
  else
    let ratio = fresh /. base in
    match direction with
    | Informational -> Within
    | Lower_better ->
        if ratio > 1.0 +. tolerance then Regressed
        else if ratio < 1.0 -. tolerance then Improved
        else Within
    | Higher_better ->
        if ratio < 1.0 -. tolerance then Regressed
        else if ratio > 1.0 +. tolerance then Improved
        else Within

let compare_metrics ?(tolerance = default_tolerance) ?(tolerances = [])
    ~baseline ~fresh () =
  if tolerance <= 0.0 then
    invalid_arg "Trajectory.compare_metrics: tolerance must be positive";
  let tol_of name =
    match List.assoc_opt name tolerances with Some t -> t | None -> tolerance
  in
  let names =
    List.sort_uniq compare (List.map fst baseline @ List.map fst fresh)
  in
  List.map
    (fun name ->
      let b = List.assoc_opt name baseline in
      let f = List.assoc_opt name fresh in
      let direction = direction_of_name name in
      let tol = tol_of name in
      let delta_pct =
        match (b, f) with
        | Some b, Some f when b <> 0.0 -> Some ((f -. b) /. b *. 100.0)
        | _ -> None
      in
      let verdict =
        match (b, f) with
        | None, Some _ -> New_metric
        | Some _, None -> Missing_metric
        | None, None -> Missing_metric (* unreachable *)
        | Some b, Some f -> judge direction ~base:b ~fresh:f ~tolerance:tol
      in
      {
        e_name = name;
        e_direction = direction;
        e_base = b;
        e_fresh = f;
        e_delta_pct = delta_pct;
        e_tolerance = tol;
        e_verdict = verdict;
      })
    names

(* a regression or a vanished metric fails the gate; a brand-new metric
   is fine — it just means the baseline wants regenerating *)
let failures entries =
  List.filter
    (fun e -> match e.e_verdict with Regressed | Missing_metric -> true | _ -> false)
    entries

let render entries =
  let buf = Buffer.create 1024 in
  let fv = function Some v -> Printf.sprintf "%14.3f" v | None -> "             -" in
  let fd = function
    | Some d -> Printf.sprintf "%+8.1f%%" d
    | None -> "        -"
  in
  Buffer.add_string buf
    (Printf.sprintf "%-36s %14s %14s %9s  %-13s %s\n" "metric" "baseline" "fresh"
       "delta" "direction" "verdict");
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%-36s %s %s %s  %-13s %s\n" e.e_name (fv e.e_base)
           (fv e.e_fresh) (fd e.e_delta_pct)
           (direction_name e.e_direction)
           (verdict_name e.e_verdict)))
    entries;
  Buffer.contents buf

(* --- snapshot parsing --- *)

let parse_snapshot body =
  let module J = Json_lite in
  match J.parse body with
  | Error e -> Error ("snapshot is not valid JSON: " ^ e)
  | Ok root -> (
      match J.member "metrics" root with
      | Some (J.Obj fields) ->
          Ok
            (List.filter_map
               (fun (name, v) -> Option.map (fun f -> (name, f)) (J.to_float v))
               fields)
      | _ -> Error "snapshot has no \"metrics\" object")

let meta_of_snapshot body =
  let module J = Json_lite in
  match J.parse body with
  | Error _ -> []
  | Ok root -> (
      match J.member "meta" root with
      | Some (J.Obj fields) ->
          List.filter_map
            (fun (k, v) ->
              match v with
              | J.Str s -> Some (k, s)
              | J.Num n ->
                  Some
                    ( k,
                      if Float.is_integer n then Printf.sprintf "%.0f" n
                      else Printf.sprintf "%.6g" n )
              | _ -> None)
            fields
      | _ -> [])
