(** Folds a {!Dsig_telemetry.Registry} into ring-buffered {!Series}.

    Each {!sample} tick takes one registry snapshot and appends one
    point per metric: counters land in [Counter] series (so
    {!Series.rate_over} derives rates), gauges keep their last value,
    and histograms fold into three derived series — [name:count]
    (cumulative observations, a counter), [name:p50] and [name:p99]
    (running percentiles, gauges). {!probe} registers extra closures
    sampled on the same clock for values that live outside the registry
    (e.g. a verifier's fast/slow stats record).

    The sampler is clock-agnostic: callers pass [~now_us] from
    whatever clock drives them (simnet virtual time in tests,
    [Telemetry.now] wall time in deployments). [interval_us] turns a
    high-frequency caller (a per-poll control-plane hook) into a fixed
    cadence: ticks arriving early return [false] and record nothing. *)

type t

val create : ?capacity:int -> ?interval_us:float -> Dsig_telemetry.Registry.t -> t
(** [capacity] (default 512) bounds every series; [interval_us]
    (default [0.], i.e. every tick records) throttles sampling.
    @raise Invalid_argument on a non-positive capacity or negative
    interval. *)

val interval_us : t -> float

val probe : t -> name:string -> kind:Series.kind -> (unit -> float) -> unit
(** Register an extra per-tick reading. The closure is called once per
    recorded sample; an exception or non-finite result drops that point
    only. The series is created eagerly so it shows up in exports even
    before the first tick. *)

val sample : t -> now_us:float -> bool
(** Record one point per metric at [now_us]. Returns [false] (and
    records nothing) when the tick arrives less than [interval_us]
    after the previously recorded one. *)

val samples : t -> int
(** Recorded (non-throttled) ticks so far. *)

val find : t -> string -> Series.t option
val all : t -> Series.t list
(** Sorted by series name. *)

val to_json : t -> string
(** [{"schema":"dsig-timeseries-v1","samples":N,"last_us":T,
    "series":[{"name","kind","points":[[t_us,v],...]},...]}] — the
    payload served by the Scrape [/timeseries] route. *)

val of_json : string -> ((string * Series.kind * (float * float) list) list, string) result
(** Parse a {!to_json} payload back into [(name, kind, points)] rows —
    the reader behind [dsig_cli timeline]'s file/endpoint modes.
    Unknown kinds degrade to [Gauge]; malformed points are skipped. *)
