(** Perf-trajectory comparison: a fresh bench snapshot against the
    committed baseline, with per-metric tolerance bands.

    Metrics are matched by name across two [BENCH_*.json] snapshots.
    Direction comes from naming conventions ([*_us] latencies are
    lower-better, [*_ops_per_sec] / [*_speedup*] are higher-better,
    everything else is informational and never gates); the verdict is
    relative to a tolerance band around the baseline. A {e regression}
    (outside the band in the bad direction) or a {e missing} metric
    fails the gate; an {e improvement} or a {e new} metric is reported
    but passes — new metrics just mean the baseline wants
    regenerating. This backs both [bench/trajectory.exe] (the
    [@trajectory] alias) and [smoke_check]'s baseline mode. *)

type direction = Lower_better | Higher_better | Informational

val direction_name : direction -> string

val direction_of_name : string -> direction
(** [*_ops_per_sec] / [*_speedup*] → higher-better; [*_us] →
    lower-better; otherwise informational. *)

type verdict = Within | Improved | Regressed | New_metric | Missing_metric

val verdict_name : verdict -> string
(** Gate failures render loudly: ["REGRESSED"] / ["MISSING"]. *)

type entry = {
  e_name : string;
  e_direction : direction;
  e_base : float option;  (** [None] = not in the baseline *)
  e_fresh : float option;  (** [None] = not in the fresh snapshot *)
  e_delta_pct : float option;  (** (fresh - base) / base, percent *)
  e_tolerance : float;  (** the band this entry was judged against *)
  e_verdict : verdict;
}

val default_tolerance : float
(** [0.5] — a metric may move 50% before gating. Wide on purpose: the
    smoke bench runs 50 ops on shared CI hardware, and a gate that
    cries wolf gets deleted. Tighten per-metric via [tolerances]. *)

val compare_metrics :
  ?tolerance:float ->
  ?tolerances:(string * float) list ->
  baseline:(string * float) list ->
  fresh:(string * float) list ->
  unit ->
  entry list
(** One entry per name present on either side, sorted by name.
    [tolerances] overrides the global band for specific metrics.
    @raise Invalid_argument on a non-positive tolerance. *)

val failures : entry list -> entry list
(** The entries that fail the gate: [Regressed] and [Missing_metric]. *)

val render : entry list -> string
(** Fixed-width human table, one line per entry. *)

val parse_snapshot : string -> ((string * float) list, string) result
(** Extract the [metrics] object from a [BENCH_*.json] body. *)

val meta_of_snapshot : string -> (string * string) list
(** Best-effort [meta] block extraction (empty if absent) — used to
    label comparison reports with when/where each side was measured. *)
