(** A fixed-capacity ring buffer of [(timestamp_us, value)] samples for
    one metric.

    Series are the storage cell of the time-series plane: a {!Sampler}
    pushes one point per metric per tick, the buffer holds the most
    recent [capacity] points, and windowed queries ([delta_over],
    [rate_over], [window_avg]/[min]/[max]) answer "what happened over
    the last N microseconds" without ever growing memory.

    Counter series are {e reset-adjusted}: when a raw sample drops below
    its predecessor (process restart, stats re-zeroed) the lost height
    is folded into a running offset so the stored series stays monotone
    and windowed deltas / rates are never negative — the same treatment
    Prometheus applies in [rate()]. *)

type kind =
  | Counter  (** cumulative, reset-adjusted to stay monotone *)
  | Gauge  (** last-value, stored verbatim *)

val kind_to_string : kind -> string
(** ["counter"] / ["gauge"] — the wire spelling used in JSON exports. *)

val kind_of_string : string -> kind option

type t

val create : ?capacity:int -> name:string -> kind -> t
(** Default capacity 512 points. Oldest points are overwritten once the
    ring is full. @raise Invalid_argument on a non-positive capacity. *)

val name : t -> string
val kind : t -> kind
val capacity : t -> int

val length : t -> int
(** Live points, [0 <= length t <= capacity t] always. *)

val push : t -> t_us:float -> float -> unit
(** Append a sample. NaN / infinite values are dropped (a broken probe
    must not poison the ring). Callers push monotonically increasing
    timestamps; the queries assume it. *)

val get : t -> int -> float * float
(** [get t i] is the [i]-th live point, oldest first.
    @raise Invalid_argument out of range. *)

val last : t -> (float * float) option
val points : t -> (float * float) list
(** Oldest first. *)

val value_at : t -> at_us:float -> float option
(** Step-function read: value of the latest point at or before [at_us];
    [None] if the window opens before any retained point. *)

val delta_over : t -> from_us:float -> until_us:float -> float
(** Increase over the window. For counters the result is clamped at 0
    and reset-adjusted; a window reaching past retained history is
    answered from the earliest point still held (partial-window
    semantics, never an extrapolation). [0.] on an empty series. *)

val rate_over : t -> window_us:float -> now_us:float -> float
(** [delta_over] the trailing window, per {e second}. *)

val window_avg : t -> from_us:float -> until_us:float -> float option
val window_min : t -> from_us:float -> until_us:float -> float option
val window_max : t -> from_us:float -> until_us:float -> float option
(** Aggregates over the points whose timestamps fall inside the closed
    window; [None] if no point does. *)
