(** A fixed-capacity ring buffer of [(timestamp_us, value)] samples for
    one metric.

    Series are the storage cell of the time-series plane: a {!Sampler}
    pushes one point per metric per tick, the buffer holds the most
    recent [capacity] points, and windowed queries ([delta_over],
    [rate_over], [window_avg]/[min]/[max]) answer "what happened over
    the last N microseconds" without ever growing memory.

    Counter series are {e reset-adjusted}: when a raw sample drops below
    its predecessor (process restart, stats re-zeroed) the lost height
    is folded into a running offset so the stored series stays monotone
    and windowed deltas / rates are never negative — the same treatment
    Prometheus applies in [rate()].

    {b Tiered retention} (DESIGN.md §15): points evicted from the raw
    ring are folded [compact_every]-to-one into a second ring of
    {!bucket} summaries instead of being discarded. Windowed queries
    transparently extend into the compacted tier: [value_at] and
    [delta_over] resolve at bucket granularity past raw history, and
    [window_min]/[window_max]/[window_avg] fold in every bucket whose
    span intersects the window — so the combined min is [<=] the true
    windowed minimum, the combined max [>=] the true maximum, and the
    average always lies between them (the invariants the qcheck suite
    pins). *)

type kind =
  | Counter  (** cumulative, reset-adjusted to stay monotone *)
  | Gauge  (** last-value, stored verbatim *)

val kind_to_string : kind -> string
(** ["counter"] / ["gauge"] — the wire spelling used in JSON exports. *)

val kind_of_string : string -> kind option

type bucket = {
  b_t_first : float;  (** timestamp of the bucket's first point *)
  b_t_last : float;
  b_vfirst : float;  (** value of the first point (tier-aware deltas) *)
  b_vlast : float;  (** value of the last point (tier-aware step reads) *)
  b_min : float;
  b_max : float;
  b_sum : float;
  b_n : int;
}
(** One compacted bucket: the summary of [compact_every] consecutive
    points evicted from the raw ring. *)

type t

val create :
  ?capacity:int -> ?compact_every:int -> ?compact_capacity:int -> name:string -> kind -> t
(** Default capacity 512 raw points, compacted 8-to-1 into a ring of
    256 buckets (so the default series spans [512 + 8*256] points of
    history, the older 4/5 at coarse resolution). [compact_every <= 0]
    disables the compacted tier — evicted points are discarded, the
    pre-§15 behavior. @raise Invalid_argument on a non-positive
    [capacity], or a non-positive [compact_capacity] when compaction is
    enabled. *)

val name : t -> string
val kind : t -> kind
val capacity : t -> int

val length : t -> int
(** Live points, [0 <= length t <= capacity t] always. *)

val push : t -> t_us:float -> float -> unit
(** Append a sample. NaN / infinite values are dropped (a broken probe
    must not poison the ring). Callers push monotonically increasing
    timestamps; the queries assume it. *)

val get : t -> int -> float * float
(** [get t i] is the [i]-th live point, oldest first.
    @raise Invalid_argument out of range. *)

val last : t -> (float * float) option
val points : t -> (float * float) list
(** Oldest first. *)

val value_at : t -> at_us:float -> float option
(** Step-function read: value of the latest point at or before [at_us].
    Reads older than the raw ring resolve at bucket granularity from
    the compacted tier; [None] only before all retained history. *)

val delta_over : t -> from_us:float -> until_us:float -> float
(** Increase over the window. For counters the result is clamped at 0
    and reset-adjusted; a window reaching past retained history (both
    tiers) is answered from the earliest point still held
    (partial-window semantics, never an extrapolation). [0.] on an
    empty series. *)

val rate_over : t -> window_us:float -> now_us:float -> float
(** [delta_over] the trailing window, per {e second}. *)

val window_avg : t -> from_us:float -> until_us:float -> float option
val window_min : t -> from_us:float -> until_us:float -> float option
val window_max : t -> from_us:float -> until_us:float -> float option
(** Aggregates over the raw points whose timestamps fall inside the
    closed window, plus every compacted bucket whose span intersects
    it; [None] if neither tier contributes. Bucket inclusion is
    conservative — see the tiered-retention note above. *)

(** {1 Compacted tier introspection (tests, exports)} *)

val compacted_length : t -> int
(** Closed buckets currently held (the partially-filled pending bucket,
    which queries do see, is not counted). *)

val compacted : t -> bucket list
(** Closed buckets, oldest first. *)
