module Tel = Dsig_telemetry.Telemetry

type window = { window_us : float; max_burn : float }

type condition =
  | Burn_rate of { bad : string; total : string; budget : float }
  | Latency of { series : string; budget_us : float }

type event = Fired | Resolved

let event_name = function Fired -> "fired" | Resolved -> "resolved"

type rule = {
  r_name : string;
  r_cond : condition;
  r_fast : window;
  r_slow : window;
}

(* classic multiwindow defaults, scaled for wall-clock deployments:
   page when 14.4x burn holds for 5 minutes AND 6x for an hour *)
let default_fast = { window_us = 300.0e6; max_burn = 14.4 }
let default_slow = { window_us = 3600.0e6; max_burn = 6.0 }

let rule ?(fast = default_fast) ?(slow = default_slow) ~name cond =
  if fast.window_us <= 0.0 || slow.window_us <= 0.0 then
    invalid_arg "Alert.rule: windows must be positive";
  (match cond with
  | Burn_rate { budget; _ } ->
      if budget <= 0.0 then invalid_arg "Alert.rule: budget must be positive"
  | Latency { budget_us; _ } ->
      if budget_us <= 0.0 then invalid_arg "Alert.rule: budget_us must be positive");
  { r_name = name; r_cond = cond; r_fast = fast; r_slow = slow }

type status = {
  mutable firing : bool;
  mutable since_us : float; (* when the current state was entered *)
  mutable burn_fast : float;
  mutable burn_slow : float;
}

type t = {
  sampler : Sampler.t;
  rules : (rule * status) list;
  c_fired : Dsig_telemetry.Metric.Counter.t;
  c_resolved : Dsig_telemetry.Metric.Counter.t;
  g_firing : Dsig_telemetry.Metric.Gauge.t;
  transitions : (float * string * event) Queue.t;
  transition_cap : int;
  mutable callbacks : (at_us:float -> rule:string -> event -> unit) list;
}

let create ?(telemetry = Tel.default) ?(transition_cap = 256) sampler rules =
  let reg = telemetry.Tel.registry in
  {
    sampler;
    rules =
      List.map
        (fun r ->
          (r, { firing = false; since_us = 0.0; burn_fast = 0.0; burn_slow = 0.0 }))
        rules;
    c_fired = Dsig_telemetry.Registry.counter reg "dsig_slo_alerts_fired_total";
    c_resolved = Dsig_telemetry.Registry.counter reg "dsig_slo_alerts_resolved_total";
    g_firing = Dsig_telemetry.Registry.gauge reg "dsig_slo_alerts_firing";
    transitions = Queue.create ();
    transition_cap;
    callbacks = [];
  }

let rules t = List.map fst t.rules
let on_transition t f = t.callbacks <- t.callbacks @ [ f ]

(* error-budget burn over one trailing window. For a burn-rate
   condition this is (bad/total)/budget — 1.0 means failures arrive
   exactly at the budgeted share; for a latency condition it is the
   windowed average over the budget. A window with no traffic burns
   nothing. *)
let burn_over t cond ~window_us ~now_us =
  let from_us = now_us -. window_us in
  match cond with
  | Burn_rate { bad; total; budget } -> (
      match (Sampler.find t.sampler bad, Sampler.find t.sampler total) with
      | Some b, Some tot ->
          let bad_d = Series.delta_over b ~from_us ~until_us:now_us in
          let total_d = Series.delta_over tot ~from_us ~until_us:now_us in
          if total_d <= 0.0 then 0.0 else bad_d /. total_d /. budget
      | _ -> 0.0)
  | Latency { series; budget_us } -> (
      match Sampler.find t.sampler series with
      | Some s -> (
          match Series.window_avg s ~from_us ~until_us:now_us with
          | Some avg -> avg /. budget_us
          | None -> 0.0)
      | None -> 0.0)

let record_transition t ~now_us name ev =
  Queue.push (now_us, name, ev) t.transitions;
  if Queue.length t.transitions > t.transition_cap then
    ignore (Queue.pop t.transitions);
  (* registration order; a raising callback aborts the step — alerting
     sinks must be total *)
  List.iter (fun f -> f ~at_us:now_us ~rule:name ev) t.callbacks

let step t ~now_us =
  let changed =
    List.filter_map
      (fun (r, st) ->
        st.burn_fast <- burn_over t r.r_cond ~window_us:r.r_fast.window_us ~now_us;
        st.burn_slow <- burn_over t r.r_cond ~window_us:r.r_slow.window_us ~now_us;
        if
          (not st.firing)
          && st.burn_fast > r.r_fast.max_burn
          && st.burn_slow > r.r_slow.max_burn
        then begin
          st.firing <- true;
          st.since_us <- now_us;
          Dsig_telemetry.Metric.Counter.incr t.c_fired;
          record_transition t ~now_us r.r_name Fired;
          Some (r.r_name, Fired)
        end
        else if st.firing && st.burn_fast <= r.r_fast.max_burn then begin
          (* the fast window clearing is the resolve signal: the slow
             window keeps yesterday's incident burning for hours *)
          st.firing <- false;
          st.since_us <- now_us;
          Dsig_telemetry.Metric.Counter.incr t.c_resolved;
          record_transition t ~now_us r.r_name Resolved;
          Some (r.r_name, Resolved)
        end
        else None)
      t.rules
  in
  let firing_now =
    List.fold_left (fun n (_, st) -> if st.firing then n + 1 else n) 0 t.rules
  in
  Dsig_telemetry.Metric.Gauge.set t.g_firing (float_of_int firing_now);
  changed

let state t name =
  List.find_map
    (fun (r, st) ->
      if r.r_name = name then
        Some (if st.firing then `Firing st.since_us else `Ok)
      else None)
    t.rules

let firing t =
  List.filter_map (fun (r, st) -> if st.firing then Some r.r_name else None) t.rules

let transitions t = List.of_seq (Queue.to_seq t.transitions)

(* --- JSON --- *)

let fnum v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let condition_json = function
  | Burn_rate { bad; total; budget } ->
      Printf.sprintf
        "{\"type\":\"burn_rate\",\"bad\":\"%s\",\"total\":\"%s\",\"budget\":%s}"
        (escape bad) (escape total) (fnum budget)
  | Latency { series; budget_us } ->
      Printf.sprintf "{\"type\":\"latency\",\"series\":\"%s\",\"budget_us\":%s}"
        (escape series) (fnum budget_us)

let to_json t =
  let alerts =
    List.map
      (fun (r, st) ->
        Printf.sprintf
          "{\"name\":\"%s\",\"state\":\"%s\",\"since_us\":%s,\"burn_fast\":%s,\"burn_slow\":%s,\"fast_window_us\":%s,\"fast_max_burn\":%s,\"slow_window_us\":%s,\"slow_max_burn\":%s,\"condition\":%s}"
          (escape r.r_name)
          (if st.firing then "firing" else "ok")
          (fnum st.since_us) (fnum st.burn_fast) (fnum st.burn_slow)
          (fnum r.r_fast.window_us) (fnum r.r_fast.max_burn)
          (fnum r.r_slow.window_us) (fnum r.r_slow.max_burn)
          (condition_json r.r_cond))
      t.rules
  in
  let transitions =
    List.map
      (fun (at_us, name, ev) ->
        Printf.sprintf "{\"at_us\":%s,\"rule\":\"%s\",\"event\":\"%s\"}" (fnum at_us)
          (escape name) (event_name ev))
      (transitions t)
  in
  Printf.sprintf
    "{\"schema\":\"dsig-alerts-v1\",\"alerts\":[%s],\"transitions\":[%s]}"
    (String.concat "," alerts)
    (String.concat "," transitions)
