module Reg = Dsig_telemetry.Registry
module H = Dsig_telemetry.Metric.Histogram
module S = Reg.Snapshot

type probe = { p_name : string; p_kind : Series.kind; p_read : unit -> float }

type t = {
  registry : Reg.t;
  capacity : int;
  interval_us : float;
  series : (string, Series.t) Hashtbl.t;
  mutable probes : probe list; (* newest first; order is irrelevant *)
  mutable samples : int;
  mutable last_us : float;
}

let create ?(capacity = 512) ?(interval_us = 0.0) registry =
  if capacity <= 0 then invalid_arg "Sampler.create: capacity must be positive";
  if interval_us < 0.0 then
    invalid_arg "Sampler.create: interval_us must be non-negative";
  {
    registry;
    capacity;
    interval_us;
    series = Hashtbl.create 32;
    probes = [];
    samples = 0;
    last_us = 0.0;
  }

let interval_us t = t.interval_us
let samples t = t.samples

let series_of t name kind =
  match Hashtbl.find_opt t.series name with
  | Some s -> s
  | None ->
      let s = Series.create ~capacity:t.capacity ~name kind in
      Hashtbl.replace t.series name s;
      s

let probe t ~name ~kind read =
  t.probes <- { p_name = name; p_kind = kind; p_read = read } :: t.probes;
  ignore (series_of t name kind)

let find t name = Hashtbl.find_opt t.series name

let all t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.series []
  |> List.sort (fun a b -> compare (Series.name a) (Series.name b))

let sample t ~now_us =
  if t.samples > 0 && now_us -. t.last_us < t.interval_us then false
  else begin
    t.samples <- t.samples + 1;
    t.last_us <- now_us;
    List.iter
      (fun p ->
        let v = try p.p_read () with _ -> Float.nan (* dropped by push *) in
        Series.push (series_of t p.p_name p.p_kind) ~t_us:now_us v)
      t.probes;
    List.iter
      (fun (name, v) ->
        match v with
        | S.Counter n ->
            Series.push (series_of t name Series.Counter) ~t_us:now_us (float_of_int n)
        | S.Gauge g -> Series.push (series_of t name Series.Gauge) ~t_us:now_us g
        | S.Histogram h ->
            (* a histogram folds to three derived series: cumulative
               observation count plus the p50/p99 of everything observed
               so far (the registry keeps cumulative buckets) *)
            Series.push (series_of t (name ^ ":count") Series.Counter) ~t_us:now_us
              (float_of_int h.H.n);
            if h.H.n > 0 then begin
              Series.push (series_of t (name ^ ":p50") Series.Gauge) ~t_us:now_us
                (H.percentile h 50.0);
              Series.push (series_of t (name ^ ":p99") Series.Gauge) ~t_us:now_us
                (H.percentile h 99.0)
            end)
      (Reg.snapshot t.registry);
    true
  end

(* --- JSON --- *)

let fnum v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let series =
    List.map
      (fun s ->
        let points =
          Series.points s
          |> List.map (fun (ts, v) -> Printf.sprintf "[%s,%s]" (fnum ts) (fnum v))
          |> String.concat ","
        in
        Printf.sprintf "{\"name\":\"%s\",\"kind\":\"%s\",\"points\":[%s]}"
          (json_escape (Series.name s))
          (Series.kind_to_string (Series.kind s))
          points)
      (all t)
  in
  Printf.sprintf
    "{\"schema\":\"dsig-timeseries-v1\",\"samples\":%d,\"last_us\":%s,\"series\":[%s]}"
    t.samples (fnum t.last_us)
    (String.concat "," series)

let of_json body =
  let ( let* ) = Result.bind in
  let module J = Json_lite in
  let* root = J.parse body in
  let* series =
    match J.member "series" root with
    | Some (J.List l) -> Ok l
    | _ -> Error "missing \"series\" array"
  in
  let parse_series s =
    let* name =
      match Option.bind (J.member "name" s) J.to_string with
      | Some n -> Ok n
      | None -> Error "series without a name"
    in
    let kind =
      match Option.bind (J.member "kind" s) J.to_string with
      | Some k -> Option.value (Series.kind_of_string k) ~default:Series.Gauge
      | None -> Series.Gauge
    in
    let points =
      match Option.bind (J.member "points" s) J.to_list with
      | Some l ->
          List.filter_map
            (function
              | J.List [ J.Num ts; J.Num v ] -> Some (ts, v)
              | _ -> None)
            l
      | None -> []
    in
    Ok (name, kind, points)
  in
  List.fold_left
    (fun acc s ->
      let* acc = acc in
      let* parsed = parse_series s in
      Ok (parsed :: acc))
    (Ok []) series
  |> Result.map List.rev
