type kind = Counter | Gauge

let kind_to_string = function Counter -> "counter" | Gauge -> "gauge"

let kind_of_string = function
  | "counter" -> Some Counter
  | "gauge" -> Some Gauge
  | _ -> None

type t = {
  name : string;
  kind : kind;
  capacity : int;
  ts : float array;
  vs : float array;
  mutable head : int; (* index of the oldest live point *)
  mutable len : int;
  (* counter-reset bookkeeping: [offset] accumulates the pre-reset
     height every time the raw sample drops, so the stored series stays
     monotone even when the underlying process restarts from zero *)
  mutable last_raw : float;
  mutable offset : float;
}

let create ?(capacity = 512) ~name kind =
  if capacity <= 0 then invalid_arg "Series.create: capacity must be positive";
  {
    name;
    kind;
    capacity;
    ts = Array.make capacity 0.0;
    vs = Array.make capacity 0.0;
    head = 0;
    len = 0;
    last_raw = 0.0;
    offset = 0.0;
  }

let name t = t.name
let kind t = t.kind
let capacity t = t.capacity
let length t = t.len

let slot t i = (t.head + i) mod t.capacity

let push t ~t_us v =
  match Float.classify_float v with
  | FP_nan | FP_infinite -> () (* never let a bad probe poison the ring *)
  | _ -> begin
    let v =
      match t.kind with
      | Gauge -> v
      | Counter ->
          if t.len = 0 then begin
            t.last_raw <- v;
            t.offset <- 0.0;
            v
          end
          else begin
            if v < t.last_raw then t.offset <- t.offset +. t.last_raw;
            t.last_raw <- v;
            t.offset +. v
          end
    in
    let i = if t.len = t.capacity then t.head else slot t t.len in
    t.ts.(i) <- t_us;
    t.vs.(i) <- v;
    if t.len = t.capacity then t.head <- (t.head + 1) mod t.capacity
    else t.len <- t.len + 1
  end

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Series.get: index out of range";
  let j = slot t i in
  (t.ts.(j), t.vs.(j))

let last t = if t.len = 0 then None else Some (get t (t.len - 1))

let points t = List.init t.len (fun i -> get t i)

(* step-function read: value of the latest point at or before [at_us] *)
let value_at t ~at_us =
  let rec scan i =
    if i < 0 then None
    else
      let ts, v = get t i in
      if ts <= at_us then Some v else scan (i - 1)
  in
  scan (t.len - 1)

let delta_over t ~from_us ~until_us =
  if t.len = 0 then 0.0
  else
    match value_at t ~at_us:until_us with
    | None -> 0.0
    | Some b ->
        (* a window opening before the buffer's history starts reads
           the earliest retained point — a partial-window answer, never
           an invented one *)
        let a =
          match value_at t ~at_us:from_us with
          | Some a -> a
          | None -> snd (get t 0)
        in
        let d = b -. a in
        if t.kind = Counter then Float.max 0.0 d else d

let rate_over t ~window_us ~now_us =
  if window_us <= 0.0 then 0.0
  else
    delta_over t ~from_us:(now_us -. window_us) ~until_us:now_us
    /. (window_us /. 1.0e6)

let fold_window t ~from_us ~until_us ~init f =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    let ts, v = get t i in
    if ts >= from_us && ts <= until_us then acc := f !acc v
  done;
  !acc

let window_avg t ~from_us ~until_us =
  let n, sum =
    fold_window t ~from_us ~until_us ~init:(0, 0.0) (fun (n, s) v ->
        (n + 1, s +. v))
  in
  if n = 0 then None else Some (sum /. float_of_int n)

let window_min t ~from_us ~until_us =
  fold_window t ~from_us ~until_us ~init:None (fun acc v ->
      match acc with Some m when m <= v -> acc | _ -> Some v)

let window_max t ~from_us ~until_us =
  fold_window t ~from_us ~until_us ~init:None (fun acc v ->
      match acc with Some m when m >= v -> acc | _ -> Some v)
