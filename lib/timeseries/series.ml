type kind = Counter | Gauge

let kind_to_string = function Counter -> "counter" | Gauge -> "gauge"

let kind_of_string = function
  | "counter" -> Some Counter
  | "gauge" -> Some Gauge
  | _ -> None

(* Tiered retention (DESIGN.md §15): when the raw ring overwrites its
   oldest point, that point is not lost — it folds into a pending
   bucket, and every [compact_every] evictions the bucket is appended
   to a second, coarser ring. A bucket keeps enough of the shape
   (first/last for step reads and deltas, min/max/sum/count for
   windowed aggregates) that queries reaching past raw history answer
   conservatively instead of partially. *)
type bucket = {
  b_t_first : float;
  b_t_last : float;
  b_vfirst : float;
  b_vlast : float;
  b_min : float;
  b_max : float;
  b_sum : float;
  b_n : int;
}

type t = {
  name : string;
  kind : kind;
  capacity : int;
  ts : float array;
  vs : float array;
  mutable head : int; (* index of the oldest live point *)
  mutable len : int;
  (* counter-reset bookkeeping: [offset] accumulates the pre-reset
     height every time the raw sample drops, so the stored series stays
     monotone even when the underlying process restarts from zero *)
  mutable last_raw : float;
  mutable offset : float;
  (* compacted tier: ring of closed buckets plus the one being filled.
     [compact_every <= 0] disables the tier (evictions discard). *)
  compact_every : int;
  cbs : bucket array;
  mutable chead : int;
  mutable clen : int;
  mutable pending : bucket option;
}

let no_bucket =
  {
    b_t_first = 0.0;
    b_t_last = 0.0;
    b_vfirst = 0.0;
    b_vlast = 0.0;
    b_min = 0.0;
    b_max = 0.0;
    b_sum = 0.0;
    b_n = 0;
  }

let create ?(capacity = 512) ?(compact_every = 8) ?(compact_capacity = 256) ~name kind =
  if capacity <= 0 then invalid_arg "Series.create: capacity must be positive";
  if compact_every > 0 && compact_capacity <= 0 then
    invalid_arg "Series.create: compact_capacity must be positive";
  {
    name;
    kind;
    capacity;
    ts = Array.make capacity 0.0;
    vs = Array.make capacity 0.0;
    head = 0;
    len = 0;
    last_raw = 0.0;
    offset = 0.0;
    compact_every;
    cbs = Array.make (if compact_every > 0 then compact_capacity else 1) no_bucket;
    chead = 0;
    clen = 0;
    pending = None;
  }

let name t = t.name
let kind t = t.kind
let capacity t = t.capacity
let length t = t.len

let slot t i = (t.head + i) mod t.capacity

(* --- compacted tier --- *)

let cslot t i = (t.chead + i) mod Array.length t.cbs

let compacted_get t i =
  if i < 0 || i >= t.clen then invalid_arg "Series.compacted_get: index out of range";
  t.cbs.(cslot t i)

let compacted_length t = t.clen
let compacted t = List.init t.clen (fun i -> compacted_get t i)

let append_bucket t b =
  let i = if t.clen = Array.length t.cbs then t.chead else cslot t t.clen in
  t.cbs.(i) <- b;
  if t.clen = Array.length t.cbs then t.chead <- (t.chead + 1) mod Array.length t.cbs
  else t.clen <- t.clen + 1

let absorb_evicted t ~t_us v =
  if t.compact_every > 0 then begin
    let b =
      match t.pending with
      | None ->
          {
            b_t_first = t_us;
            b_t_last = t_us;
            b_vfirst = v;
            b_vlast = v;
            b_min = v;
            b_max = v;
            b_sum = v;
            b_n = 1;
          }
      | Some b ->
          {
            b with
            b_t_last = t_us;
            b_vlast = v;
            b_min = Float.min b.b_min v;
            b_max = Float.max b.b_max v;
            b_sum = b.b_sum +. v;
            b_n = b.b_n + 1;
          }
    in
    if b.b_n >= t.compact_every then begin
      append_bucket t b;
      t.pending <- None
    end
    else t.pending <- Some b
  end

(* buckets visible to queries: closed ones plus the partial pending
   bucket — a window must never skip the evicted points accumulating
   between flushes *)
let iter_buckets t f =
  for i = 0 to t.clen - 1 do
    f (compacted_get t i)
  done;
  match t.pending with Some b -> f b | None -> ()

let push t ~t_us v =
  match Float.classify_float v with
  | FP_nan | FP_infinite -> () (* never let a bad probe poison the ring *)
  | _ -> begin
    let v =
      match t.kind with
      | Gauge -> v
      | Counter ->
          if t.len = 0 && t.clen = 0 && t.pending = None then begin
            t.last_raw <- v;
            t.offset <- 0.0;
            v
          end
          else begin
            if v < t.last_raw then t.offset <- t.offset +. t.last_raw;
            t.last_raw <- v;
            t.offset +. v
          end
    in
    let i = if t.len = t.capacity then t.head else slot t t.len in
    if t.len = t.capacity then absorb_evicted t ~t_us:t.ts.(i) t.vs.(i);
    t.ts.(i) <- t_us;
    t.vs.(i) <- v;
    if t.len = t.capacity then t.head <- (t.head + 1) mod t.capacity
    else t.len <- t.len + 1
  end

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Series.get: index out of range";
  let j = slot t i in
  (t.ts.(j), t.vs.(j))

let last t = if t.len = 0 then None else Some (get t (t.len - 1))

let points t = List.init t.len (fun i -> get t i)

(* step-function read: value of the latest point at or before [at_us].
   Reads older than the raw ring resolve at bucket granularity from the
   compacted tier (the last value of the latest bucket starting at or
   before [at_us]). *)
let value_at t ~at_us =
  let rec scan i =
    if i < 0 then begin
      let best = ref None in
      iter_buckets t (fun b -> if b.b_t_first <= at_us then best := Some b.b_vlast);
      !best
    end
    else
      let ts, v = get t i in
      if ts <= at_us then Some v else scan (i - 1)
  in
  scan (t.len - 1)

(* the oldest value still retained in any tier *)
let earliest_retained t =
  let first = ref None in
  iter_buckets t (fun b -> if !first = None then first := Some b.b_vfirst);
  match !first with
  | Some v -> Some v
  | None -> if t.len = 0 then None else Some (snd (get t 0))

let delta_over t ~from_us ~until_us =
  match value_at t ~at_us:until_us with
  | None -> 0.0
  | Some b ->
      (* a window opening before all retained history reads the
         earliest retained point — a partial-window answer, never an
         invented one *)
      let a =
        match value_at t ~at_us:from_us with
        | Some a -> a
        | None -> Option.value ~default:b (earliest_retained t)
      in
      let d = b -. a in
      if t.kind = Counter then Float.max 0.0 d else d

let rate_over t ~window_us ~now_us =
  if window_us <= 0.0 then 0.0
  else
    delta_over t ~from_us:(now_us -. window_us) ~until_us:now_us
    /. (window_us /. 1.0e6)

let fold_window t ~from_us ~until_us ~init f =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    let ts, v = get t i in
    if ts >= from_us && ts <= until_us then acc := f !acc v
  done;
  !acc

(* compacted buckets whose span intersects the window. Including a
   bucket that only partially overlaps keeps the aggregates
   conservative: the combined min can only be <= the true windowed min
   and the combined max >= it — the invariants the qcheck suite pins. *)
let fold_window_buckets t ~from_us ~until_us ~init f =
  let acc = ref init in
  iter_buckets t (fun b ->
      if b.b_t_last >= from_us && b.b_t_first <= until_us then acc := f !acc b);
  !acc

let window_avg t ~from_us ~until_us =
  let n, sum =
    fold_window t ~from_us ~until_us ~init:(0, 0.0) (fun (n, s) v ->
        (n + 1, s +. v))
  in
  let n, sum =
    fold_window_buckets t ~from_us ~until_us ~init:(n, sum) (fun (n, s) b ->
        (n + b.b_n, s +. b.b_sum))
  in
  if n = 0 then None else Some (sum /. float_of_int n)

let window_min t ~from_us ~until_us =
  let raw =
    fold_window t ~from_us ~until_us ~init:None (fun acc v ->
        match acc with Some m when m <= v -> acc | _ -> Some v)
  in
  fold_window_buckets t ~from_us ~until_us ~init:raw (fun acc b ->
      match acc with Some m when m <= b.b_min -> acc | _ -> Some b.b_min)

let window_max t ~from_us ~until_us =
  let raw =
    fold_window t ~from_us ~until_us ~init:None (fun acc v ->
        match acc with Some m when m >= v -> acc | _ -> Some v)
  in
  fold_window_buckets t ~from_us ~until_us ~init:raw (fun acc b ->
      match acc with Some m when m >= b.b_max -> acc | _ -> Some b.b_max)
