(** A minimal recursive-descent JSON reader.

    The repo's exporters hand-roll their JSON output (no external JSON
    dependency); this is the matching reader, just big enough for the
    consumers in this tree — [dsig_cli timeline] parsing a
    [/timeseries] dump, and {!Trajectory} parsing [BENCH_smoke.json]
    snapshots. It accepts standard JSON; [\u] escapes outside Latin-1
    degrade to ['?']. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Whole-string parse; trailing non-whitespace is an error. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on other constructors. *)

val to_float : t -> float option
val to_string : t -> string option
val to_list : t -> t list option
val to_obj : t -> (string * t) list option
