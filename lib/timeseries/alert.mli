(** Multiwindow SLO burn-rate alerting over sampled {!Series}.

    A rule watches one condition through two trailing windows — a fast
    one for detection latency and a slow one so a brief blip cannot
    page. The {e burn rate} is how fast the error budget is being
    spent: burn 1.0 means failures arrive exactly at the budgeted
    share, burn 14.4 exhausts a 30-day budget in 2.5 days. A rule
    {e fires} when both windows exceed their thresholds and
    {e resolves} when the fast window drops back under its threshold
    (the slow window alone would keep a finished incident firing for
    its whole width).

    State transitions feed the owning telemetry registry
    ([dsig_slo_alerts_fired_total], [dsig_slo_alerts_resolved_total],
    [dsig_slo_alerts_firing]) and a bounded transition log, and the
    whole state serializes to JSON for the Scrape [/alerts] route. *)

type window = {
  window_us : float;  (** trailing window width, microseconds *)
  max_burn : float;  (** fire when the window's burn exceeds this *)
}

type condition =
  | Burn_rate of { bad : string; total : string; budget : float }
      (** [(delta bad / delta total) / budget] over the window, both
          names resolved against the sampler's counter series. [budget]
          is the tolerated bad share (e.g. [0.1] = up to 10% slow-path
          verifications). No traffic in the window burns nothing. *)
  | Latency of { series : string; budget_us : float }
      (** windowed average of a gauge series (e.g. a sampled [:p99])
          over the budget — burn 1.0 at exactly the budget. *)

type event = Fired | Resolved

val event_name : event -> string

type rule

val default_fast : window
(** 5 min, max burn 14.4 — the classic page-now window. *)

val default_slow : window
(** 1 h, max burn 6.0. *)

val rule : ?fast:window -> ?slow:window -> name:string -> condition -> rule
(** @raise Invalid_argument on non-positive windows or budgets. *)

type t

val create : ?telemetry:Dsig_telemetry.Telemetry.t -> ?transition_cap:int -> Sampler.t -> rule list -> t
(** Alert counters register in [telemetry]'s registry (default
    {!Dsig_telemetry.Telemetry.default}); the transition log keeps the
    last [transition_cap] (default 256) events. *)

val rules : t -> rule list

val on_transition : t -> (at_us:float -> rule:string -> event -> unit) -> unit
(** Register a callback invoked synchronously from {!step} on every
    fire/resolve transition, after the transition is logged; callbacks
    run in registration order. Deployments use this to route alerts to
    a log or an operator channel without polling {!transitions}. A
    raising callback aborts the step — sinks must be total. *)

val step : t -> now_us:float -> (string * event) list
(** Re-evaluate every rule against the sampler at [now_us]; returns the
    transitions that happened on this step (usually []). Cheap enough
    to call from the same hook that drives {!Sampler.sample}. *)

val state : t -> string -> [ `Ok | `Firing of float ] option
(** Current state of the named rule; [`Firing since_us] carries when it
    fired. [None] for an unknown rule name. *)

val firing : t -> string list

val transitions : t -> (float * string * event) list
(** Oldest first, bounded by [transition_cap]. *)

val to_json : t -> string
(** [{"schema":"dsig-alerts-v1","alerts":[...],"transitions":[...]}] —
    the payload served by the Scrape [/alerts] route. Burn values are
    the ones computed by the latest {!step}. *)
