module BU = Dsig_util.Bytesutil

let magic = "DSIGSNP2"
let magic_v1 = "DSIGSNP1"
let filename = "snapshot"

type batch = { id : int64; size : int; high_water : int; retired : bool }

type t = {
  fingerprint : string;
  seq : int64;
  next_batch_id : int64;
  batches : batch list;
  epoch : int;
  pending_rotation : (int * int64) option;
}

let encode t =
  let body =
    BU.concat
      ([
         BU.u64_le t.seq;
         BU.u64_le t.next_batch_id;
         BU.u32_le (Int32.of_int (String.length t.fingerprint));
         t.fingerprint;
         BU.u32_le (Int32.of_int (List.length t.batches));
       ]
      @ List.concat_map
          (fun b ->
            [
              BU.u64_le b.id;
              BU.u32_le (Int32.of_int b.size);
              BU.u32_le (Int32.of_int (b.high_water + 1));
              String.make 1 (if b.retired then '\001' else '\000');
            ])
          t.batches
      @ [ BU.u32_le (Int32.of_int t.epoch) ]
      @
      match t.pending_rotation with
      | None -> [ "\000" ]
      | Some (e, b) -> [ "\001"; BU.u32_le (Int32.of_int e); BU.u64_le b ])
  in
  BU.concat [ magic; BU.u32_le (Wal.crc32 body); body ]

let decode data =
  let len = String.length data in
  let fail pos what = Error (Printf.sprintf "snapshot: %s at byte %d" what pos) in
  if len < String.length magic + 4 then fail len "truncated header"
  else
    let version =
      if String.sub data 0 (String.length magic) = magic then Some 2
      else if String.sub data 0 (String.length magic_v1) = magic_v1 then Some 1
      else None
    in
    match version with
    | None -> fail 0 "bad magic"
    | Some version ->
        let crc = BU.get_u32_le data (String.length magic) in
        let body = String.sub data (String.length magic + 4) (len - String.length magic - 4) in
        if Wal.crc32 body <> crc then fail (String.length magic) "crc mismatch"
        else begin
          let blen = String.length body in
          let pos = ref 0 in
          let take n what =
            if !pos + n > blen then failwith (Printf.sprintf "snapshot: %s at byte %d" what !pos);
            let p = !pos in
            pos := !pos + n;
            p
          in
          try
            let seq = BU.get_u64_le body (take 8 "truncated seq") in
            let next_batch_id = BU.get_u64_le body (take 8 "truncated next batch id") in
            let fp_len = Int32.to_int (BU.get_u32_le body (take 4 "truncated fingerprint length")) in
            if fp_len < 0 then failwith "snapshot: negative fingerprint length";
            let fingerprint = String.sub body (take fp_len "truncated fingerprint") fp_len in
            let n = Int32.to_int (BU.get_u32_le body (take 4 "truncated batch count")) in
            if n < 0 then failwith "snapshot: negative batch count";
            let batches =
              List.init n (fun _ ->
                  let id = BU.get_u64_le body (take 8 "truncated batch id") in
                  let size = Int32.to_int (BU.get_u32_le body (take 4 "truncated batch size")) in
                  let hw1 = Int32.to_int (BU.get_u32_le body (take 4 "truncated high water")) in
                  let retired = body.[take 1 "truncated retired flag"] <> '\000' in
                  if size < 0 || hw1 < 0 then failwith "snapshot: negative batch field";
                  { id; size; high_water = hw1 - 1; retired })
            in
            let epoch, pending_rotation =
              if version = 1 then (0, None)
              else begin
                let epoch = Int32.to_int (BU.get_u32_le body (take 4 "truncated epoch")) in
                if epoch < 0 then failwith "snapshot: negative epoch";
                let pending =
                  match body.[take 1 "truncated rotation flag"] with
                  | '\000' -> None
                  | _ ->
                      let e = Int32.to_int (BU.get_u32_le body (take 4 "truncated rotation epoch")) in
                      let b = BU.get_u64_le body (take 8 "truncated rotation batch") in
                      if e < 0 then failwith "snapshot: negative rotation epoch";
                      Some (e, b)
                in
                (epoch, pending)
              end
            in
            if !pos <> blen then failwith (Printf.sprintf "snapshot: trailing bytes at byte %d" !pos);
            Ok { fingerprint; seq; next_batch_id; batches; epoch; pending_rotation }
          with Failure e -> Error e
        end

let save ~dir t =
  let path = Filename.concat dir filename in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (encode t);
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  Sys.rename tmp path

let load ~dir =
  let path = Filename.concat dir filename in
  if not (Sys.file_exists path) then Ok None
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error e -> Error e
    | data -> ( match decode data with Ok t -> Ok (Some t) | Error e -> Error e)
