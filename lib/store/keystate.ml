module BU = Dsig_util.Bytesutil
module Tel = Dsig_telemetry.Telemetry
module Metric = Dsig_telemetry.Metric

(* {1 Journal records} *)

type record =
  | Key_reserved of { batch_id : int64; key_index : int }
  | Batch_sealed of { batch_id : int64; size : int }
  | Batch_retired of int64
  | Checkpoint of int64
  | Clean_shutdown of int64
  | Rotation_proposed of { epoch : int; batch_id : int64 }
  | Rotation_confirmed of { epoch : int; batch_id : int64 }

let encode_record = function
  | Key_reserved { batch_id; key_index } ->
      BU.concat [ "\001"; BU.u64_le batch_id; BU.u32_le (Int32.of_int key_index) ]
  | Batch_sealed { batch_id; size } ->
      BU.concat [ "\002"; BU.u64_le batch_id; BU.u32_le (Int32.of_int size) ]
  | Batch_retired batch_id -> BU.concat [ "\003"; BU.u64_le batch_id ]
  | Checkpoint seq -> BU.concat [ "\004"; BU.u64_le seq ]
  | Clean_shutdown next_batch_id -> BU.concat [ "\005"; BU.u64_le next_batch_id ]
  | Rotation_proposed { epoch; batch_id } ->
      BU.concat [ "\006"; BU.u64_le batch_id; BU.u32_le (Int32.of_int epoch) ]
  | Rotation_confirmed { epoch; batch_id } ->
      BU.concat [ "\007"; BU.u64_le batch_id; BU.u32_le (Int32.of_int epoch) ]

let decode_record data =
  let len = String.length data in
  let bad what = Error (Printf.sprintf "keystate record: %s" what) in
  if len = 0 then bad "empty"
  else
    let need n k = if len <> 1 + n then bad "wrong size" else k () in
    match data.[0] with
    | '\001' ->
        need 12 (fun () ->
            let key_index = Int32.to_int (BU.get_u32_le data 9) in
            if key_index < 0 then bad "negative key index"
            else Ok (Key_reserved { batch_id = BU.get_u64_le data 1; key_index }))
    | '\002' ->
        need 12 (fun () ->
            let size = Int32.to_int (BU.get_u32_le data 9) in
            if size <= 0 then bad "non-positive batch size"
            else Ok (Batch_sealed { batch_id = BU.get_u64_le data 1; size }))
    | '\003' -> need 8 (fun () -> Ok (Batch_retired (BU.get_u64_le data 1)))
    | '\004' -> need 8 (fun () -> Ok (Checkpoint (BU.get_u64_le data 1)))
    | '\005' -> need 8 (fun () -> Ok (Clean_shutdown (BU.get_u64_le data 1)))
    | '\006' ->
        need 12 (fun () ->
            let epoch = Int32.to_int (BU.get_u32_le data 9) in
            if epoch < 0 then bad "negative epoch"
            else Ok (Rotation_proposed { epoch; batch_id = BU.get_u64_le data 1 }))
    | '\007' ->
        need 12 (fun () ->
            let epoch = Int32.to_int (BU.get_u32_le data 9) in
            if epoch < 0 then bad "negative epoch"
            else Ok (Rotation_confirmed { epoch; batch_id = BU.get_u64_le data 1 }))
    | c -> bad (Printf.sprintf "unknown tag %d" (Char.code c))

(* {1 Configuration} *)

type config = { dir : string; group_commit : int; fsync : bool; checkpoint_every : int }

let config ?(group_commit = 8) ?(fsync = true) ?(checkpoint_every = 16) dir =
  if group_commit <= 0 then invalid_arg "Keystate.config: group_commit must be positive";
  if checkpoint_every < 0 then invalid_arg "Keystate.config: checkpoint_every must be >= 0";
  { dir; group_commit; fsync; checkpoint_every }

(* {1 Segment bookkeeping} *)

let seg_name seq = Printf.sprintf "wal-%016Ld" seq
let seg_path dir seq = Filename.concat dir (seg_name seq)

let seg_seq_of_name name =
  if String.length name = 20 && String.sub name 0 4 = "wal-" then
    Int64.of_string_opt (String.sub name 4 16)
  else None

let list_segments dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map seg_seq_of_name
  |> List.sort Int64.compare

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* {1 In-memory state} *)

type batch_state = { size : int; high_water : int; retired : bool }

type batch = { mutable b_size : int; mutable b_high_water : int; mutable b_retired : bool }

type state = {
  table : (int64, batch) Hashtbl.t;
  mutable seal_order : int64 list; (* newest first; reversed on read *)
  mutable next : int64;
  mutable last_reserved : int64 option; (* batch of the newest reserve *)
  mutable clean : bool; (* last replayed record was a clean marker *)
  mutable epoch : int; (* confirmed rotation epoch *)
  mutable pending : (int * int64) option; (* proposed, unconfirmed rotation *)
}

let fresh_state () =
  {
    table = Hashtbl.create 17;
    seal_order = [];
    next = 0L;
    last_reserved = None;
    clean = false;
    epoch = 0;
    pending = None;
  }

let state_of_snapshot (snap : Snapshot.t) =
  let st = fresh_state () in
  List.iter
    (fun (b : Snapshot.batch) ->
      Hashtbl.replace st.table b.id
        { b_size = b.size; b_high_water = b.high_water; b_retired = b.retired };
      st.seal_order <- b.id :: st.seal_order)
    snap.batches;
  st.next <- snap.next_batch_id;
  st.epoch <- snap.epoch;
  st.pending <- snap.pending_rotation;
  st

let max_i64 a b = if Int64.compare a b >= 0 then a else b

let find_or_add st batch_id =
  match Hashtbl.find_opt st.table batch_id with
  | Some b -> b
  | None ->
      (* a reserve whose seal record did not survive: track it with an
         unknown size so replay stays total *)
      let b = { b_size = 0; b_high_water = -1; b_retired = false } in
      Hashtbl.replace st.table batch_id b;
      st.seal_order <- batch_id :: st.seal_order;
      b

let apply st = function
  | Key_reserved { batch_id; key_index } ->
      let b = find_or_add st batch_id in
      if key_index > b.b_high_water then b.b_high_water <- key_index;
      st.last_reserved <- Some batch_id;
      st.next <- max_i64 st.next (Int64.add batch_id 1L);
      st.clean <- false
  | Batch_sealed { batch_id; size } ->
      let b = find_or_add st batch_id in
      b.b_size <- size;
      st.next <- max_i64 st.next (Int64.add batch_id 1L);
      st.clean <- false
  | Batch_retired batch_id ->
      let b = find_or_add st batch_id in
      b.b_retired <- true;
      st.clean <- false
  | Checkpoint _ -> st.clean <- false
  | Clean_shutdown next_batch_id ->
      st.next <- max_i64 st.next next_batch_id;
      st.clean <- true
  | Rotation_proposed { epoch; batch_id } ->
      st.pending <- Some (epoch, batch_id);
      st.next <- max_i64 st.next (Int64.add batch_id 1L);
      st.clean <- false
  | Rotation_confirmed { epoch; batch_id } ->
      (* the cutover is one atomic record: everything sealed before the
         staged batch retires with it *)
      Hashtbl.iter
        (fun id b -> if Int64.compare id batch_id < 0 then b.b_retired <- true)
        st.table;
      if epoch > st.epoch then st.epoch <- epoch;
      st.pending <- None;
      st.next <- max_i64 st.next (Int64.add batch_id 1L);
      st.clean <- false

let live_batches st =
  List.rev st.seal_order
  |> List.filter_map (fun id ->
         match Hashtbl.find_opt st.table id with
         | Some b when not b.b_retired ->
             Some (id, { size = b.b_size; high_water = b.b_high_water; retired = false })
         | _ -> None)

let snapshot_batches st =
  List.rev st.seal_order
  |> List.filter_map (fun id ->
         match Hashtbl.find_opt st.table id with
         | Some b ->
             Some
               {
                 Snapshot.id;
                 size = b.b_size;
                 high_water = b.b_high_water;
                 retired = b.b_retired;
               }
         | None -> None)

(* Burn the gap: the unfsynced suffix held at most [group_commit - 1]
   records, any of which could have been reservations that left the
   process as signatures. Consumption is sequential in seal order, so we
   walk forward from the batch of the last surviving reservation (or the
   oldest live batch when none survived) and mark the next
   [group_commit - 1] key indices as spent. *)
let burn_gap st ~group_commit =
  let order = List.rev st.seal_order in
  let order =
    match st.last_reserved with
    | None -> order
    | Some from ->
        let rec drop = function
          | [] -> order (* last reserve's batch unknown: be conservative *)
          | id :: _ as l when Int64.equal id from -> l
          | _ :: tl -> drop tl
        in
        drop order
  in
  let budget = ref (group_commit - 1) in
  let burned = ref [] in
  List.iter
    (fun id ->
      if !budget > 0 then
        match Hashtbl.find_opt st.table id with
        | Some b when (not b.b_retired) && b.b_size > 0 ->
            let start = b.b_high_water + 1 in
            let avail = b.b_size - start in
            if avail > 0 then begin
              let n = min avail !budget in
              b.b_high_water <- start + n - 1;
              if b.b_high_water = b.b_size - 1 then b.b_retired <- true;
              burned := (id, start, n) :: !burned;
              budget := !budget - n
            end
        | _ -> ())
    order;
  List.rev !burned

(* {1 Recovery report} *)

type report = {
  had_snapshot : bool;
  segments_replayed : int;
  records_replayed : int;
  torn_segments : int;
  torn_bytes : int;
  clean : bool;
  burned : (int64 * int * int) list;
  resume : (int64 * int) list;
  next_batch_id : int64;
  epoch : int;
  rotation_rolled_back : (int * int64) option;
}

let first_safe_index report ~batch_id =
  List.assoc_opt batch_id report.resume

(* {1 The journal} *)

type tel = {
  c_recoveries : Metric.Counter.t;
  c_burned : Metric.Counter.t;
  c_torn : Metric.Counter.t;
  c_snapshots : Metric.Counter.t;
  c_rollbacks : Metric.Counter.t;
  g_segments : Metric.Gauge.t;
  bundle : Tel.t;
}

type t = {
  cfg : config;
  fingerprint : string;
  st : state;
  mutable wal : Wal.t;
  mutable seq : int64; (* active segment sequence *)
  mutable seals_since_checkpoint : int;
  mutable closed : bool;
  lock : Mutex.t;
  tel : tel;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let prune_segments dir ~upto =
  List.iter
    (fun seq ->
      if Int64.compare seq upto <= 0 then
        try Sys.remove (seg_path dir seq) with Sys_error _ -> ())
    (list_segments dir)

let save_snapshot t ~covered =
  Snapshot.save ~dir:t.cfg.dir
    {
      Snapshot.fingerprint = t.fingerprint;
      seq = covered;
      next_batch_id = t.st.next;
      batches = snapshot_batches t.st;
      epoch = t.st.epoch;
      pending_rotation = t.st.pending;
    };
  Metric.Counter.incr t.tel.c_snapshots

(* Rotate to a fresh segment: sync + close the active one, persist a
   snapshot covering it, start its successor, and prune what the
   snapshot covers. Called under the lock. *)
let checkpoint_locked t =
  Wal.close t.wal;
  let covered = t.seq in
  save_snapshot t ~covered;
  t.seq <- Int64.add covered 1L;
  t.wal <-
    Wal.create ~telemetry:t.tel.bundle ~group_commit:t.cfg.group_commit ~fsync:t.cfg.fsync
      (seg_path t.cfg.dir t.seq);
  Wal.append t.wal (encode_record (Checkpoint covered));
  prune_segments t.cfg.dir ~upto:covered;
  Metric.Gauge.set t.tel.g_segments (float_of_int (List.length (list_segments t.cfg.dir)));
  t.seals_since_checkpoint <- 0

let open_ ?(telemetry = Tel.default) ?fingerprint cfg =
  let tel =
    {
      c_recoveries = Tel.counter telemetry "dsig_store_recoveries_total";
      c_burned = Tel.counter telemetry "dsig_store_burned_keys_total";
      c_torn = Tel.counter telemetry "dsig_store_torn_truncations_total";
      c_snapshots = Tel.counter telemetry "dsig_store_snapshots_total";
      c_rollbacks = Tel.counter telemetry "dsig_rotation_rollbacks_total";
      g_segments = Tel.gauge telemetry "dsig_store_wal_segments";
      bundle = telemetry;
    }
  in
  match
    mkdir_p cfg.dir;
    Snapshot.load ~dir:cfg.dir
  with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "keystate: cannot create %s: %s" cfg.dir (Unix.error_message e))
  | Error e -> Error (Printf.sprintf "keystate: %s" e)
  | Ok snap -> (
      let fp_given = Option.value fingerprint ~default:"" in
      let fp_stored = match snap with Some s -> s.Snapshot.fingerprint | None -> "" in
      if fp_given <> "" && fp_stored <> "" && fp_given <> fp_stored then
        Error
          (Printf.sprintf
             "keystate: store %s belongs to config %S, refusing to resume as %S (a key reused \
              under a different scheme is a forgery)"
             cfg.dir fp_stored fp_given)
      else
        let fp = if fp_given <> "" then fp_given else fp_stored in
        let snap_seq = match snap with Some s -> s.Snapshot.seq | None -> 0L in
        let st = match snap with Some s -> state_of_snapshot s | None -> fresh_state () in
        let segments = list_segments cfg.dir in
        let to_replay = List.filter (fun s -> Int64.compare s snap_seq > 0) segments in
        let fresh_store = snap = None && segments = [] in
        let torn_segments = ref 0 and torn_bytes = ref 0 and records = ref 0 in
        let replay_error = ref None in
        List.iter
          (fun seq ->
            if !replay_error = None then
              match Wal.repair (seg_path cfg.dir seq) with
              | Error e -> replay_error := Some e
              | Ok r ->
                  (match r.Wal.torn with
                  | Some _ ->
                      incr torn_segments;
                      torn_bytes := !torn_bytes + (r.Wal.total_bytes - r.Wal.valid_bytes);
                      Metric.Counter.incr tel.c_torn
                  | None -> ());
                  List.iter
                    (fun payload ->
                      if !replay_error = None then
                        match decode_record payload with
                        | Error e ->
                            replay_error :=
                              Some (Printf.sprintf "%s: %s" (seg_name seq) e)
                        | Ok record ->
                            incr records;
                            apply st record)
                    r.Wal.records)
          to_replay;
        match !replay_error with
        | Some e -> Error (Printf.sprintf "keystate: %s" e)
        | None ->
            let clean = fresh_store || st.clean in
            let burned = if clean then [] else burn_gap st ~group_commit:cfg.group_commit in
            (* a proposed-but-unconfirmed rotation never survives the
               process: the staged batch's key material lived only in
               memory, so recovery rolls the journal back to exactly one
               live generation by retiring the staged batch *)
            let rotation_rolled_back =
              match st.pending with
              | None -> None
              | Some (e, bid) ->
                  (match Hashtbl.find_opt st.table bid with
                  | Some b -> b.b_retired <- true
                  | None -> ());
                  st.pending <- None;
                  Metric.Counter.incr tel.c_rollbacks;
                  Some (e, bid)
            in
            if not clean then
              (* seals can be lost along with reserves: leave a batch-id
                 gap wide enough to cover every possibly-lost seal *)
              st.next <- Int64.add st.next (Int64.of_int cfg.group_commit);
            let max_seg = List.fold_left max_i64 snap_seq segments in
            let t =
              {
                cfg;
                fingerprint = fp;
                st;
                wal = Wal.create ~telemetry ~group_commit:cfg.group_commit ~fsync:cfg.fsync
                        (seg_path cfg.dir (Int64.add max_seg 1L));
                seq = Int64.add max_seg 1L;
                seals_since_checkpoint = 0;
                closed = false;
                lock = Mutex.create ();
                tel;
              }
            in
            (* fold recovery (burn included) into a snapshot right away,
               so the burn survives even a crash-free shutdown and old
               segments never need a second replay *)
            save_snapshot t ~covered:max_seg;
            prune_segments cfg.dir ~upto:max_seg;
            Metric.Gauge.set tel.g_segments
              (float_of_int (List.length (list_segments cfg.dir)));
            if not fresh_store then Metric.Counter.incr tel.c_recoveries;
            let burned_total = List.fold_left (fun acc (_, _, n) -> acc + n) 0 burned in
            if burned_total > 0 then Metric.Counter.incr ~by:burned_total tel.c_burned;
            let resume =
              List.map (fun (id, (b : batch_state)) -> (id, b.high_water + 1)) (live_batches st)
            in
            Ok
              ( t,
                {
                  had_snapshot = snap <> None;
                  segments_replayed = List.length to_replay;
                  records_replayed = !records;
                  torn_segments = !torn_segments;
                  torn_bytes = !torn_bytes;
                  clean;
                  burned;
                  resume;
                  next_batch_id = st.next;
                  epoch = st.epoch;
                  rotation_rolled_back;
                } ))

let check_open t what = if t.closed then invalid_arg ("Keystate." ^ what ^ ": store is closed")

let reserve t ~batch_id ~key_index =
  locked t (fun () ->
      check_open t "reserve";
      Wal.append t.wal (encode_record (Key_reserved { batch_id; key_index }));
      let b = find_or_add t.st batch_id in
      if key_index > b.b_high_water then b.b_high_water <- key_index;
      t.st.last_reserved <- Some batch_id;
      t.st.next <- max_i64 t.st.next (Int64.add batch_id 1L);
      if b.b_size > 0 && key_index = b.b_size - 1 && not b.b_retired then begin
        Wal.append t.wal (encode_record (Batch_retired batch_id));
        b.b_retired <- true
      end)

let seal t ~batch_id ~size =
  locked t (fun () ->
      check_open t "seal";
      Wal.append t.wal (encode_record (Batch_sealed { batch_id; size }));
      let b = find_or_add t.st batch_id in
      b.b_size <- size;
      t.st.next <- max_i64 t.st.next (Int64.add batch_id 1L);
      t.seals_since_checkpoint <- t.seals_since_checkpoint + 1;
      if t.cfg.checkpoint_every > 0 && t.seals_since_checkpoint >= t.cfg.checkpoint_every then
        checkpoint_locked t)

let retire t ~batch_id =
  locked t (fun () ->
      check_open t "retire";
      let b = find_or_add t.st batch_id in
      if not b.b_retired then begin
        Wal.append t.wal (encode_record (Batch_retired batch_id));
        b.b_retired <- true
      end)

(* {2 Rotation (key lifecycle plane)}

   The cutover protocol is propose -> confirm. [propose_rotation] is
   journaled before the staged batch's seal, so a crash between the two
   leaves nothing to roll back; a crash after the seal but before
   [confirm_rotation] recovers by retiring the staged batch (its key
   material died with the process) — either way exactly one generation
   stays live. [confirm_rotation] is a single atomic record whose
   replay retires every earlier batch. *)

let propose_rotation t ~epoch ~batch_id =
  locked t (fun () ->
      check_open t "propose_rotation";
      if t.st.pending <> None then
        invalid_arg "Keystate.propose_rotation: a rotation is already pending";
      if epoch <= t.st.epoch then invalid_arg "Keystate.propose_rotation: epoch must advance";
      Wal.append t.wal (encode_record (Rotation_proposed { epoch; batch_id }));
      t.st.pending <- Some (epoch, batch_id);
      t.st.next <- max_i64 t.st.next (Int64.add batch_id 1L))

let confirm_rotation t ~epoch ~batch_id =
  locked t (fun () ->
      check_open t "confirm_rotation";
      (match t.st.pending with
      | Some (e, b) when e = epoch && Int64.equal b batch_id -> ()
      | Some _ | None ->
          invalid_arg "Keystate.confirm_rotation: no matching proposed rotation");
      Wal.append t.wal (encode_record (Rotation_confirmed { epoch; batch_id }));
      (* make the cutover durable now: once confirmed, keys from the
         staged batch may leave the process immediately *)
      Wal.sync t.wal;
      Hashtbl.iter
        (fun id b -> if Int64.compare id batch_id < 0 then b.b_retired <- true)
        t.st.table;
      if epoch > t.st.epoch then t.st.epoch <- epoch;
      t.st.pending <- None)

let epoch t = locked t (fun () -> t.st.epoch)
let pending_rotation t = locked t (fun () -> t.st.pending)

let checkpoint t =
  locked t (fun () ->
      check_open t "checkpoint";
      checkpoint_locked t)

let sync t = locked t (fun () -> if not t.closed then Wal.sync t.wal)

let close t =
  locked t (fun () ->
      if not t.closed then begin
        Wal.append t.wal (encode_record (Clean_shutdown t.st.next));
        Wal.close t.wal;
        t.closed <- true
      end)

let crash t =
  locked t (fun () ->
      if not t.closed then begin
        Wal.abort t.wal;
        t.closed <- true
      end)

let next_batch_id t = locked t (fun () -> t.st.next)
let batches t = locked t (fun () -> live_batches t.st)
let wal_path t = Wal.path t.wal
let synced_bytes t = Wal.synced_bytes t.wal

(* {1 Read-only scan} *)

type scan = {
  scan_snapshot : Snapshot.t option;
  scan_segments : (int64 * Wal.recovery) list;
  scan_state : (int64 * batch_state) list;
  scan_next_batch_id : int64;
  scan_clean : bool;
  scan_torn : bool;
  scan_epoch : int;
  scan_pending_rotation : (int * int64) option;
  scan_rotations : (int * int64) list;
}

let scan ~dir =
  if not (Sys.file_exists dir) then Error (Printf.sprintf "keystate: no store at %s" dir)
  else
    match Snapshot.load ~dir with
    | Error e -> Error (Printf.sprintf "keystate: %s" e)
    | Ok snap -> (
        let snap_seq = match snap with Some s -> s.Snapshot.seq | None -> 0L in
        let st = match snap with Some s -> state_of_snapshot s | None -> fresh_state () in
        let error = ref None in
        let rotations = ref [] in
        let segments =
          List.filter_map
            (fun seq ->
              if !error <> None then None
              else
                match Wal.load (seg_path dir seq) with
                | Error e ->
                    error := Some e;
                    None
                | Ok r ->
                    if Int64.compare seq snap_seq > 0 then
                      List.iter
                        (fun payload ->
                          if !error = None then
                            match decode_record payload with
                            | Error e -> error := Some (Printf.sprintf "%s: %s" (seg_name seq) e)
                            | Ok record ->
                                (match record with
                                | Rotation_confirmed { epoch; batch_id } ->
                                    rotations := (epoch, batch_id) :: !rotations
                                | _ -> ());
                                apply st record)
                        r.Wal.records;
                    Some (seq, r))
            (list_segments dir)
        in
        match !error with
        | Some e -> Error (Printf.sprintf "keystate: %s" e)
        | None ->
            let torn = List.exists (fun (_, r) -> r.Wal.torn <> None) segments in
            Ok
              {
                scan_snapshot = snap;
                scan_segments = segments;
                scan_state = live_batches st;
                scan_next_batch_id = st.next;
                scan_clean = st.clean;
                scan_torn = torn;
                scan_epoch = st.epoch;
                scan_pending_rotation = st.pending;
                scan_rotations = List.rev !rotations;
              })
