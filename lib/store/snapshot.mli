(** Atomic checkpoint of a signer's durable key state.

    A snapshot captures everything the {!Keystate} journal would replay:
    the configuration fingerprint (so a store is never resumed under a
    different scheme), the next batch id, and the per-batch high-water
    key index. It also records the WAL segment sequence it covers, so
    recovery replays only the segments written after it and older ones
    can be pruned.

    On-disk format: an 8-byte magic ["DSIGSNP2"], a u32 LE CRC-32 of the
    body, then the body — covered seq (u64), next batch id (u64),
    fingerprint (u32 length + bytes), batch count (u32) and per batch:
    id (u64), size (u32), high-water + 1 (u32, 0 = none reserved),
    retired flag (u8); then the key-lifecycle tail — rotation epoch
    (u32) and a pending-rotation record (u8 flag, then epoch u32 +
    batch id u64 when set). ["DSIGSNP1"] snapshots (no tail) still
    decode, at epoch 0 with no pending rotation. Writes go to a temp
    file, fsync, then a rename — a crash leaves either the old snapshot
    or the new one, never a mix. *)

type batch = {
  id : int64;
  size : int;  (** keys in the batch, from its [batch_sealed] record *)
  high_water : int;  (** highest journaled reserved key index; -1 if none *)
  retired : bool;
}

type t = {
  fingerprint : string;
  seq : int64;  (** WAL segments with sequence <= [seq] are covered *)
  next_batch_id : int64;
  batches : batch list;
  epoch : int;  (** confirmed rotation epoch (0 until the first cutover) *)
  pending_rotation : (int * int64) option;
      (** a journaled rotation propose (epoch, staged batch id) that has
          not been confirmed — recovery rolls it back *)
}

val filename : string
(** ["snapshot"] — the live snapshot's name inside a store directory. *)

val encode : t -> string
val decode : string -> (t, string) result
(** Total: [Error] on bad magic, CRC mismatch, or truncation (with the
    failing byte offset). *)

val save : dir:string -> t -> unit
(** Atomic write to [dir/snapshot] (temp file + fsync + rename). *)

val load : dir:string -> (t option, string) result
(** [Ok None] when no snapshot exists; [Error] on a corrupt one. *)
