(** The durable signer key-state journal: which one-time keys may still
    be used after a restart.

    Reusing a hash-based one-time key is a forgery vector, so the signer
    journals every key reservation {e before} the signature leaves the
    process: [reserve] appends a [key_reserved] record to the {!Wal} (and
    fsyncs per the group-commit budget), [seal] records a freshly
    generated batch, [retire] a fully consumed or evicted one, and
    [checkpoint] folds everything into a {!Snapshot} and rotates the WAL
    segment (pruning segments the snapshot covers).

    {b Recovery — "burn the gap".} After a crash, the journal may be
    missing up to [group_commit - 1] trailing records (appends fsync
    every [group_commit]-th call), and the last durable frame may be
    torn. Recovery therefore truncates each segment at its first bad
    frame, replays, and then {e conservatively} skips every key that
    could possibly have been spent without a surviving record: starting
    from the last journaled reservation, the next [group_commit - 1]
    key indices in consumption order are burned, and the next batch id
    is advanced past [group_commit] possibly-lost batch seals. A clean
    {!close} writes a shutdown marker, after which recovery burns
    nothing. The guarantee tested by the crash-injection matrix: no key
    index is ever signed twice, and at most [group_commit] keys are
    burned per crash. *)

(** {1 Journal records} *)

type record =
  | Key_reserved of { batch_id : int64; key_index : int }
      (** journaled before the signature leaves the signer *)
  | Batch_sealed of { batch_id : int64; size : int }
      (** a generated-and-announced batch of [size] one-time keys *)
  | Batch_retired of int64  (** batch fully consumed or evicted *)
  | Checkpoint of int64  (** a snapshot covering WAL seq <= the payload *)
  | Clean_shutdown of int64  (** orderly close; payload = next batch id *)
  | Rotation_proposed of { epoch : int; batch_id : int64 }
      (** a staged next-generation batch, journaled before its seal *)
  | Rotation_confirmed of { epoch : int; batch_id : int64 }
      (** atomic cutover: replay retires every batch older than
          [batch_id] *)

val encode_record : record -> string
val decode_record : string -> (record, string) result
(** Total: [Error] on unknown tags and wrong sizes, never raises. *)

(** {1 Configuration} *)

type config = {
  dir : string;  (** store directory (created if missing) *)
  group_commit : int;  (** appends coalesced per fsync (>= 1) *)
  fsync : bool;  (** [false] skips physical fsync (tests) *)
  checkpoint_every : int;  (** auto-checkpoint per N seals; 0 = never *)
}

val config : ?group_commit:int -> ?fsync:bool -> ?checkpoint_every:int -> string -> config
(** Defaults: group commit 8, fsync on, checkpoint every 16 seals.
    @raise Invalid_argument on a non-positive group commit or a negative
    checkpoint cadence. *)

(** {1 Recovery report} *)

type batch_state = { size : int; high_water : int; retired : bool }

type report = {
  had_snapshot : bool;
  segments_replayed : int;
  records_replayed : int;
  torn_segments : int;  (** segments truncated at a bad frame *)
  torn_bytes : int;  (** bytes discarded across those tails *)
  clean : bool;  (** previous incarnation closed with {!close} *)
  burned : (int64 * int * int) list;
      (** (batch id, first burned index, count) per affected batch *)
  resume : (int64 * int) list;
      (** (batch id, first safe key index) for every live batch *)
  next_batch_id : int64;
  epoch : int;  (** confirmed rotation epoch *)
  rotation_rolled_back : (int * int64) option;
      (** a proposed-but-unconfirmed rotation that recovery resolved by
          retiring the staged batch (its key material died with the
          process), leaving exactly one live generation *)
}

val first_safe_index : report -> batch_id:int64 -> int option
(** First key index of [batch_id] that recovery can prove was never
    signed (burn included); [None] for retired or unknown batches. *)

(** {1 The journal} *)

type t

val open_ :
  ?telemetry:Dsig_telemetry.Telemetry.t ->
  ?fingerprint:string ->
  config ->
  (t * report, string) result
(** Open (or create) the store in [config.dir]: load the snapshot,
    replay newer WAL segments (physically truncating torn tails), and
    start a fresh segment. [fingerprint] (the signer's
    {!Dsig.Config} fingerprint) is recorded in snapshots and checked
    against an existing store — a mismatch is an [Error], because
    resuming key state under a different scheme silently invalidates the
    reuse guarantee. All entry points are thread-safe (one internal
    lock), so the runtime's two domains can share a handle.

    Telemetry (on top of the {!Wal} series):
    [dsig_store_recoveries_total], [dsig_store_burned_keys_total],
    [dsig_store_torn_truncations_total], [dsig_store_snapshots_total]
    counters and the [dsig_store_wal_segments] gauge. *)

val reserve : t -> batch_id:int64 -> key_index:int -> unit
(** Journal that [key_index] of [batch_id] is about to be spent. Call
    {e before} the signature leaves the signer. Reserving the last index
    of a sealed batch auto-retires it.

    The burn-the-gap recovery bound assumes reservations arrive in
    consumption order — ascending indices, batches in seal order — which
    is what the signer's FIFO key queue produces. Out-of-order
    reservations would widen the set a crash can lose beyond what the
    gap burn covers. *)

val seal : t -> batch_id:int64 -> size:int -> unit
(** Journal a freshly generated batch; triggers an automatic
    {!checkpoint} every [checkpoint_every] seals. *)

val retire : t -> batch_id:int64 -> unit
(** Journal that a batch will never sign again (evicted / exhausted). *)

(** {2 Rotation (key lifecycle plane)}

    Zero-downtime rotation journals a propose -> confirm pair around
    the staged next-generation batch. Propose {e before} sealing the
    staged batch; a crash at any point before {!confirm_rotation}
    recovers by retiring the staged batch ([report.rotation_rolled_back]
    and the [dsig_rotation_rollbacks_total] counter), so exactly one
    generation is ever live. *)

val propose_rotation : t -> epoch:int -> batch_id:int64 -> unit
(** Journal that [batch_id] is the staged batch for [epoch].
    @raise Invalid_argument if a rotation is already pending or [epoch]
    does not advance the confirmed epoch. *)

val confirm_rotation : t -> epoch:int -> batch_id:int64 -> unit
(** Atomically cut over: journal (and sync) the confirm record, retire
    every batch older than [batch_id], and advance the epoch.
    @raise Invalid_argument without a matching pending propose. *)

val epoch : t -> int
val pending_rotation : t -> (int * int64) option

val checkpoint : t -> unit
(** Snapshot the current state (atomic rename), rotate to a fresh WAL
    segment, and prune segments the snapshot covers. *)

val sync : t -> unit
(** Force the WAL's pending group commit to disk. *)

val close : t -> unit
(** Append the clean-shutdown marker, sync, and close. Idempotent. *)

val crash : t -> unit
(** Drop the handles without marker or sync — crash-test hook. *)

val next_batch_id : t -> int64
(** The smallest batch id no signature has ever used — the restarted
    signer's starting counter. *)

val batches : t -> (int64 * batch_state) list
(** Live (non-retired, non-pruned) batch states, for inspection. *)

val wal_path : t -> string
(** The active segment's path (crash tests cut it at chosen offsets). *)

val synced_bytes : t -> int
(** The active segment's fsync horizon (see {!Wal.synced_bytes}). *)

(** {1 Read-only scan (CLI)} *)

type scan = {
  scan_snapshot : Snapshot.t option;
  scan_segments : (int64 * Wal.recovery) list;  (** (seq, recovery) *)
  scan_state : (int64 * batch_state) list;
  scan_next_batch_id : int64;
  scan_clean : bool;
  scan_torn : bool;
  scan_epoch : int;
  scan_pending_rotation : (int * int64) option;
  scan_rotations : (int * int64) list;
      (** confirmed rotation records found in the journal, oldest first —
          rotations older than the last snapshot are folded away and do
          not appear *)
}

val scan : dir:string -> (scan, string) result
(** Inspect a store without opening it for writing: no new segment, no
    truncation, no lock. [Error] on an unreadable directory, corrupt
    snapshot, or unreadable segment. *)
