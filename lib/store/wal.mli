(** Append-only, CRC32-framed write-ahead log with group commit.

    One segment file per {!create}: an 8-byte magic ["DSIGWAL1"], then
    per record a fixed header — payload length (u32 LE) and CRC-32 of
    the payload (u32 LE) — followed by the payload bytes.

    Durability follows the group-commit protocol: every {!append}
    writes the frame through to the operating system immediately (so a
    process crash loses nothing), but the file is fsynced only every
    [group_commit] appends (so an OS/power crash loses at most the
    unfsynced suffix — possibly with a torn final frame). {!load} is
    torn-tail tolerant: it returns the longest valid record prefix and
    reports where and why it stopped, never raising on corrupt input.

    The writer is single-owner; callers that share a [t] across domains
    must lock (see {!Keystate}). *)

type t

val create :
  ?telemetry:Dsig_telemetry.Telemetry.t ->
  ?group_commit:int ->
  ?fsync:bool ->
  string ->
  t
(** Open [path] for appending, writing the magic if the file is fresh.
    [group_commit] (default 8) is the number of appends coalesced per
    fsync; [fsync:false] turns the physical fsync off (the group-commit
    accounting still runs — for tests and throwaway stores).

    Telemetry: [dsig_store_appends_total] / [dsig_store_fsyncs_total]
    counters and the [dsig_store_fsync_us] (fsync latency) and
    [dsig_store_group_commit_batch] (appends coalesced per fsync)
    histograms.
    @raise Invalid_argument if [group_commit] is not positive.
    @raise Sys_error if the file cannot be opened. *)

val append : t -> string -> unit
(** Frame and write one record (through to the OS), fsyncing when the
    group-commit budget fills. When [append] returns, the record is
    readable by {!load} after a process crash; it is durable against an
    OS crash only after the covering fsync (at most [group_commit - 1]
    appends later). *)

val sync : t -> unit
(** Force the pending group commit: flush and fsync now. No-op when
    nothing is pending. *)

val close : t -> unit
(** {!sync} then close the descriptor. Idempotent. *)

val abort : t -> unit
(** Close the descriptor {e without} flushing or fsyncing — simulates a
    process kill for crash tests. Idempotent. *)

val path : t -> string

val appended : t -> int
(** Records appended through this handle. *)

val synced_bytes : t -> int
(** File offset covered by the last fsync (or flush when [fsync:false]);
    bytes beyond it may be lost or torn by an OS crash. *)

(** {1 Recovery} *)

type recovery = {
  records : string list;  (** valid record payloads, oldest first *)
  valid_bytes : int;  (** file offset of the first bad byte (or EOF) *)
  total_bytes : int;
  torn : string option;
      (** why reading stopped before EOF: ["short header"],
          ["bad length"], ["short payload"], ["bad crc"] *)
}

val load : string -> (recovery, string) result
(** Read a segment, stopping at the first bad frame (torn tail, flipped
    bit, truncated header). [Error] only for I/O failures and a missing
    or wrong magic — a valid-prefix file always yields [Ok]. *)

val repair : string -> (recovery, string) result
(** {!load}, then physically truncate the file to [valid_bytes] so the
    torn tail cannot shadow future appends. *)

val crc32 : string -> int32
(** The CRC-32 (IEEE 802.3) used for framing, exposed for tests. *)
