module BU = Dsig_util.Bytesutil
module Tel = Dsig_telemetry.Telemetry
module Metric = Dsig_telemetry.Metric

let magic = "DSIGWAL1"
let header_bytes = 8 (* u32 length + u32 crc *)

(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320). *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl) in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

type tel = {
  c_appends : Metric.Counter.t;
  c_fsyncs : Metric.Counter.t;
  h_fsync : Metric.Histogram.t;
  h_batch : Metric.Histogram.t;
  bundle : Tel.t;
}

type t = {
  path : string;
  oc : out_channel;
  group_commit : int;
  fsync : bool;
  mutable pending : int; (* appends since the last sync point *)
  mutable appended : int;
  mutable written_bytes : int;
  mutable synced_bytes : int;
  mutable closed : bool;
  tel : tel;
}

let frame payload =
  BU.concat
    [ BU.u32_le (Int32.of_int (String.length payload)); BU.u32_le (crc32 payload); payload ]

let create ?(telemetry = Tel.default) ?(group_commit = 8) ?(fsync = true) path =
  if group_commit <= 0 then invalid_arg "Wal.create: group_commit must be positive";
  let fresh = not (Sys.file_exists path) in
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  if fresh then begin
    output_string oc magic;
    flush oc
  end;
  let size = out_channel_length oc in
  {
    path;
    oc;
    group_commit;
    fsync;
    pending = 0;
    appended = 0;
    written_bytes = size;
    synced_bytes = size;
    closed = false;
    tel =
      {
        c_appends = Tel.counter telemetry "dsig_store_appends_total";
        c_fsyncs = Tel.counter telemetry "dsig_store_fsyncs_total";
        h_fsync = Tel.histogram telemetry "dsig_store_fsync_us";
        h_batch = Tel.histogram telemetry "dsig_store_group_commit_batch";
        bundle = telemetry;
      };
  }

let sync t =
  if (not t.closed) && t.pending > 0 then begin
    flush t.oc;
    let t0 = Tel.now t.tel.bundle in
    if t.fsync then Unix.fsync (Unix.descr_of_out_channel t.oc);
    Metric.Histogram.add t.tel.h_fsync (Tel.now t.tel.bundle -. t0);
    Metric.Counter.incr t.tel.c_fsyncs;
    Metric.Histogram.add t.tel.h_batch (float_of_int t.pending);
    t.synced_bytes <- t.written_bytes;
    t.pending <- 0
  end

let append t payload =
  if t.closed then invalid_arg "Wal.append: log is closed";
  (* write through to the OS on every append: a process crash loses
     nothing, only an OS crash can lose the unfsynced suffix *)
  output_string t.oc (frame payload);
  flush t.oc;
  t.written_bytes <- t.written_bytes + header_bytes + String.length payload;
  t.appended <- t.appended + 1;
  t.pending <- t.pending + 1;
  Metric.Counter.incr t.tel.c_appends;
  if t.pending >= t.group_commit then sync t

let close t =
  if not t.closed then begin
    sync t;
    close_out_noerr t.oc;
    t.closed <- true
  end

let abort t =
  if not t.closed then begin
    (* drop the handle without flushing the channel buffer — what a
       SIGKILL would do (appends flush eagerly, so nothing is buffered
       in practice; the point is to skip the final sync) *)
    (try Unix.close (Unix.descr_of_out_channel t.oc) with Unix.Unix_error _ -> ());
    t.closed <- true
  end

let path t = t.path
let appended t = t.appended
let synced_bytes t = t.synced_bytes

type recovery = {
  records : string list;
  valid_bytes : int;
  total_bytes : int;
  torn : string option;
}

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let len = in_channel_length ic in
        really_input_string ic len)
  with
  | exception Sys_error e -> Error e
  | data ->
      let len = String.length data in
      if len < String.length magic || String.sub data 0 (String.length magic) <> magic then
        Error (Printf.sprintf "%s: bad or missing WAL magic" path)
      else begin
        let pos = ref (String.length magic) in
        let records = ref [] in
        let torn = ref None in
        let stop reason = torn := Some reason in
        while !torn = None && !pos < len do
          if !pos + header_bytes > len then stop "short header"
          else begin
            let rlen = Int32.to_int (BU.get_u32_le data !pos) in
            let crc = BU.get_u32_le data (!pos + 4) in
            if rlen < 0 then stop "bad length"
            else if !pos + header_bytes + rlen > len then stop "short payload"
            else begin
              let payload = String.sub data (!pos + header_bytes) rlen in
              if crc32 payload <> crc then stop "bad crc"
              else begin
                records := payload :: !records;
                pos := !pos + header_bytes + rlen
              end
            end
          end
        done;
        Ok { records = List.rev !records; valid_bytes = !pos; total_bytes = len; torn = !torn }
      end

let repair path =
  match load path with
  | Error _ as e -> e
  | Ok r ->
      if r.valid_bytes < r.total_bytes then begin
        let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            Unix.ftruncate fd r.valid_bytes;
            Unix.fsync fd)
      end;
      Ok r
