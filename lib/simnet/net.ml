type 'a node = {
  tx : Resource.t;
  rx : Resource.t;
  inbox : (int * int * 'a) Channel.t;
  mutable gbps : float;
}

type 'a faults = {
  drop : float;
  duplicate : float;
  corrupt : float;
  reorder : float;
  reorder_delay_us : float;
  mutate : ('a -> 'a option) option;
  rng : Dsig_util.Rng.t;
}

type 'a t = {
  sim : Sim.t;
  latency_us : float;
  per_byte_us : float;
  nodes : 'a node array;
  mutable faults : 'a faults option;
}

let create sim ~nodes ?(latency_us = 1.0) ?(per_byte_us = 0.0006) ?(bandwidth_gbps = 100.0) () =
  {
    sim;
    latency_us;
    per_byte_us;
    nodes =
      Array.init nodes (fun i ->
          {
            tx = Resource.create ~name:(Printf.sprintf "nic%d.tx" i) sim;
            rx = Resource.create ~name:(Printf.sprintf "nic%d.rx" i) sim;
            inbox = Channel.create sim;
            gbps = bandwidth_gbps;
          });
    faults = None;
  }

let set_faults t ?(drop = 0.0) ?(duplicate = 0.0) ?(corrupt = 0.0) ?(reorder = 0.0)
    ?(reorder_delay_us = 20.0) ?mutate ~seed () =
  t.faults <-
    Some
      { drop; duplicate; corrupt; reorder; reorder_delay_us; mutate; rng = Dsig_util.Rng.create seed }

let clear_faults t = t.faults <- None

let sim t = t.sim
let set_bandwidth t ~node ~gbps = t.nodes.(node).gbps <- gbps

(* Serialization time of [bytes] at [gbps]: bytes*8 bits / (gbps*1e9) s,
   expressed in µs. *)
let wire_time bytes gbps = float_of_int (bytes * 8) /. (gbps *. 1000.0)

let enqueue t ~src ~dst ~bytes payload =
  let d = t.nodes.(dst) in
  Sim.spawn t.sim (fun () ->
      Resource.use d.rx (wire_time bytes d.gbps);
      Channel.send d.inbox (src, bytes, payload))

let deliver t ~src ~dst ~bytes payload =
  match t.faults with
  | None -> enqueue t ~src ~dst ~bytes payload
  | Some f ->
      let draw p = p > 0.0 && Dsig_util.Rng.float f.rng 1.0 < p in
      let copies = if draw f.drop then 0 else if draw f.duplicate then 2 else 1 in
      for _ = 1 to copies do
        (* corruption: pass the payload through the mutate hook (a
           bit-flipped re-decode for byte payloads); without a hook, or
           when the hook reports the frame undecodable, the corrupted
           copy is lost — the receiver's decoder would have rejected it *)
        let corrupted =
          if draw f.corrupt then match f.mutate with Some m -> m payload | None -> None
          else Some payload
        in
        match corrupted with
        | None -> ()
        | Some payload ->
            if draw f.reorder then
              (* hold the copy back so later traffic overtakes it *)
              let extra = Dsig_util.Rng.float f.rng f.reorder_delay_us in
              Sim.schedule t.sim ~delay:extra (fun () -> enqueue t ~src ~dst ~bytes payload)
            else enqueue t ~src ~dst ~bytes payload
      done

let send t ~src ~dst ~bytes payload =
  let s = t.nodes.(src) in
  Resource.use s.tx (wire_time bytes s.gbps);
  let propagation = t.latency_us +. (t.per_byte_us *. float_of_int bytes) in
  Sim.schedule t.sim ~delay:propagation (fun () -> deliver t ~src ~dst ~bytes payload)

let send_async t ~src ~dst ~bytes payload =
  Sim.spawn t.sim (fun () -> send t ~src ~dst ~bytes payload)

let inject t ~node ~src payload = Channel.send t.nodes.(node).inbox (src, 0, payload)

let recv t ~node = Channel.recv t.nodes.(node).inbox
let recv_opt t ~node = Channel.recv_opt t.nodes.(node).inbox
let pending t ~node = Channel.length t.nodes.(node).inbox
let tx_utilization t ~node = Resource.utilization t.nodes.(node).tx
let rx_utilization t ~node = Resource.utilization t.nodes.(node).rx
