(** Latency recorders and percentile/CDF reporting for the benchmark
    harnesses (the paper reports p10/p50/p90 throughout §8).

    Samples are kept in a growable array and sorted {e at most once} per
    batch of adds: the first percentile/CDF query after an [add] sorts
    in place and every subsequent query reuses that order, so [summary]
    (four percentile calls) costs one sort, not four.

    A recorder retains every sample (exact percentiles, O(n) memory).
    For constant-memory, always-on accounting use
    [Dsig_telemetry.Metric.Histogram] instead. *)

type t

val create : ?name:string -> unit -> t
(** [name] identifies the recorder's call site in error messages. *)

val add : t -> float -> unit
val count : t -> int

val mean : t -> float
(** O(1) (running sum); [0.0] when empty. *)

val percentile : t -> float -> float
(** [percentile t 50.0] is the median — nearest-rank on the sorted
    samples: the value at 1-based rank [ceil (p/100 * n)].
    @raise Invalid_argument on an empty recorder; the message names the
    recorder given to {!create} (or [<unnamed>]). *)

val min : t -> float
val max : t -> float

val cdf : ?points:int -> t -> (float * float) list
(** [(value, cumulative fraction)] pairs, for CDF plots (Figure 8). *)

val summary : t -> string
(** "p10=… p50=… p90=… n=…" one-liner. *)
