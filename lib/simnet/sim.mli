(** Discrete-event simulation core.

    Stands in for the paper's 4-server RDMA testbed (DESIGN.md §1):
    deterministic virtual time in microseconds, with processes written
    as straight-line code over OCaml 5 effect handlers — [sleep] and the
    blocking primitives of {!Channel} and {!Resource} suspend the
    current process and resume it from the event loop. *)

type t

val create : unit -> t
val now : t -> float
(** Current virtual time in microseconds. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run a callback [delay] µs from now (FIFO among equal timestamps). *)

val spawn : t -> (unit -> unit) -> unit
(** Start a new process at the current time. *)

val run : ?until:float -> t -> unit
(** Execute events until the queue drains or virtual time exceeds
    [until]. Events beyond the horizon stay queued, so [run] may be
    called repeatedly with increasing [until] to step virtual time;
    processes blocked when the queue drains are abandoned. *)

(** {1 Effects usable inside processes} *)

val sleep : float -> unit
(** Suspend the calling process for the given number of µs. *)

val suspend : ((unit -> unit) -> unit) -> unit
(** [suspend register] parks the calling process and hands a [resume]
    thunk to [register]; calling the thunk (typically from another
    process via {!schedule}) resumes it. The thunk must be called at
    most once. Building block for {!Channel} and {!Resource}. *)
