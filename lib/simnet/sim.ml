type event = { time : float; seq : int; fn : unit -> unit }

module Heap = struct
  (* binary min-heap on (time, seq) *)
  type t = { mutable a : event array; mutable n : int }

  let dummy = { time = 0.0; seq = 0; fn = ignore }
  let create () = { a = Array.make 256 dummy; n = 0 }
  let lt x y = x.time < y.time || (x.time = y.time && x.seq < y.seq)

  let push h e =
    if h.n = Array.length h.a then begin
      let b = Array.make (2 * h.n) dummy in
      Array.blit h.a 0 b 0 h.n;
      h.a <- b
    end;
    h.a.(h.n) <- e;
    h.n <- h.n + 1;
    let i = ref (h.n - 1) in
    while !i > 0 && lt h.a.(!i) h.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.n = 0 then None
    else begin
      let top = h.a.(0) in
      h.n <- h.n - 1;
      h.a.(0) <- h.a.(h.n);
      h.a.(h.n) <- dummy;
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.n && lt h.a.(l) h.a.(!smallest) then smallest := l;
        if r < h.n && lt h.a.(r) h.a.(!smallest) then smallest := r;
        if !smallest = !i then continue_ := false
        else begin
          let tmp = h.a.(!smallest) in
          h.a.(!smallest) <- h.a.(!i);
          h.a.(!i) <- tmp;
          i := !smallest
        end
      done;
      Some top
    end
end

type t = { mutable time : float; mutable seq : int; heap : Heap.t }

type _ Effect.t +=
  | Sleep : (t * float) -> unit Effect.t
  | Suspend : (t * ((unit -> unit) -> unit)) -> unit Effect.t

(* The engine a process belongs to travels inside the effect payload, so
   processes of different engines can coexist; the "current engine" for
   the plain [sleep]/[suspend] API is tracked dynamically. *)
let current : t option ref = ref None

let create () = { time = 0.0; seq = 0; heap = Heap.create () }
let now t = t.time

let schedule t ~delay fn =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  t.seq <- t.seq + 1;
  Heap.push t.heap { time = t.time +. delay; seq = t.seq; fn }

let with_current t f =
  let saved = !current in
  current := Some t;
  Fun.protect ~finally:(fun () -> current := saved) f

let exec _t body =
  let open Effect.Deep in
  match_with body ()
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep (engine, d) ->
              Some
                (fun (k : (a, _) continuation) ->
                  schedule engine ~delay:d (fun () ->
                      with_current engine (fun () -> continue k ())))
          | Suspend (engine, register) ->
              Some
                (fun (k : (a, _) continuation) ->
                  register (fun () -> with_current engine (fun () -> continue k ())))
          | _ -> None);
    }

let spawn t body = schedule t ~delay:0.0 (fun () -> exec t (fun () -> with_current t body))

let run ?(until = infinity) t =
  let continue_ = ref true in
  while !continue_ do
    match Heap.pop t.heap with
    | None -> continue_ := false
    | Some e ->
        if e.time > until then begin
          (* keep the event: [run] can be called again to continue *)
          Heap.push t.heap e;
          t.time <- until;
          continue_ := false
        end
        else begin
          t.time <- e.time;
          e.fn ()
        end
  done

let engine_of_current name =
  match !current with
  | Some t -> t
  | None -> failwith (name ^ ": not inside a simulation process")

let sleep d = Effect.perform (Sleep (engine_of_current "Sim.sleep", d))
let suspend register = Effect.perform (Suspend (engine_of_current "Sim.suspend", register))
