(* Fleet-scale scenario generation (DESIGN.md §15): pure deterministic
   math over virtual time. Nothing here touches the event loop — a
   driver (Dsig_deploy.Fleetrun, bench fleet, tests) asks "is signer i
   active at time t, at what rate, toward which verifiers" and builds
   its own processes from the answers. Same spec + same seed = same
   fleet, bit for bit. *)

type profile =
  | Steady
  | Diurnal of { period_us : float; peak : float }
  | Spike of { at_us : float; dur_us : float; magnitude : float }

type outage = { zone : int; from_us : float; until_us : float }
type churn = { up_us : float; down_us : float }

type spec = {
  signers : int;
  verifiers : int;
  zones : int;
  fanout : int;
  seed : int64;
  base_rate_per_sec : float;
  profile : profile;
  outages : outage list;
  churn : churn option;
}

type t = { spec : spec }

let default_spec =
  {
    signers = 100;
    verifiers = 10;
    zones = 4;
    fanout = 3;
    seed = 1L;
    base_rate_per_sec = 200.0;
    profile = Steady;
    outages = [];
    churn = None;
  }

let validate (s : spec) =
  let fail msg = invalid_arg (Printf.sprintf "Fleet.create: %s" msg) in
  if s.signers <= 0 then fail "signers must be positive";
  if s.verifiers <= 0 then fail "verifiers must be positive";
  if s.zones <= 0 then fail "zones must be positive";
  if s.fanout <= 0 || s.fanout > s.verifiers then fail "fanout must be in 1..verifiers";
  if not (Float.is_finite s.base_rate_per_sec) || s.base_rate_per_sec <= 0.0 then
    fail "base_rate_per_sec must be positive";
  (match s.profile with
  | Steady -> ()
  | Diurnal { period_us; peak } ->
      if period_us <= 0.0 then fail "diurnal period must be positive";
      if peak < 1.0 then fail "diurnal peak must be >= 1"
  | Spike { dur_us; magnitude; _ } ->
      if dur_us <= 0.0 then fail "spike duration must be positive";
      if magnitude < 1.0 then fail "spike magnitude must be >= 1");
  List.iter
    (fun o ->
      if o.zone < 0 || o.zone >= s.zones then fail "outage zone out of range";
      if o.until_us <= o.from_us then fail "outage window must be non-empty")
    s.outages;
  match s.churn with
  | None -> ()
  | Some c -> if c.up_us <= 0.0 || c.down_us <= 0.0 then fail "churn durations must be positive"

let create spec =
  validate spec;
  { spec }

let spec t = t.spec

(* splitmix64: the per-entity determinism engine. Every judgement about
   signer [i] hashes (seed, i, purpose) — stateless, order-independent,
   and stable across runs, which is what lets a thousand-node scenario
   be replayed exactly. *)
let mix (z0 : int64) : int64 =
  let open Int64 in
  let z = mul (logxor z0 (shift_right_logical z0 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let hash t ~entity ~purpose =
  let open Int64 in
  mix (add t.spec.seed (add (mul (of_int entity) 0x9e3779b97f4a7c15L) (of_int purpose)))

(* uniform float in [0, 1) from the top 53 bits *)
let unit_float h = Int64.to_float (Int64.shift_right_logical h 11) *. (1.0 /. 9007199254740992.0)

(* --- topology --- *)

let zone_of_signer t ~signer = ((signer mod t.spec.zones) + t.spec.zones) mod t.spec.zones
let zone_of_verifier t ~verifier = ((verifier mod t.spec.zones) + t.spec.zones) mod t.spec.zones

let verifiers_of t ~signer =
  (* [fanout] distinct verifiers, anchored at a seed-dependent offset so
     load spreads evenly but each signer's group is stable *)
  let v = t.spec.verifiers in
  let base = Int64.to_int (Int64.rem (hash t ~entity:signer ~purpose:1) (Int64.of_int v)) in
  let base = (base + v) mod v in
  List.init (min t.spec.fanout v) (fun k -> (base + k) mod v)

(* --- load profile --- *)

let pi = 4.0 *. atan 1.0

let load t ~now_us =
  match t.spec.profile with
  | Steady -> 1.0
  | Diurnal { period_us; peak } ->
      (* raised cosine between 1x (trough) and peak (crest) *)
      let phase = 2.0 *. pi *. (now_us /. period_us) in
      1.0 +. ((peak -. 1.0) *. 0.5 *. (1.0 -. cos phase))
  | Spike { at_us; dur_us; magnitude } ->
      if now_us >= at_us && now_us < at_us +. dur_us then magnitude else 1.0

(* --- availability: zone outages + client churn --- *)

let zone_out t ~zone ~now_us =
  List.exists (fun o -> o.zone = zone && now_us >= o.from_us && now_us < o.until_us) t.spec.outages

let churned_out t ~signer ~now_us =
  match t.spec.churn with
  | None -> false
  | Some { up_us; down_us } ->
      (* per-signer square wave with a hashed phase shift: each client
         is up for [up_us], down for [down_us], desynchronized across
         the fleet so churn is a steady background hum, not a wave *)
      let period = up_us +. down_us in
      let phase = unit_float (hash t ~entity:signer ~purpose:2) *. period in
      let pos = Float.rem (now_us +. phase) period in
      pos >= up_us

let active t ~signer ~now_us =
  (not (zone_out t ~zone:(zone_of_signer t ~signer) ~now_us)) && not (churned_out t ~signer ~now_us)

let rate t ~signer ~now_us =
  if active t ~signer ~now_us then t.spec.base_rate_per_sec *. load t ~now_us else 0.0

let send_interval_us t ~signer ~now_us =
  let r = rate t ~signer ~now_us in
  if r <= 0.0 then None else Some (1_000_000.0 /. r)

let offered_rate_per_sec t ~now_us =
  let total = ref 0.0 in
  for s = 0 to t.spec.signers - 1 do
    total := !total +. rate t ~signer:s ~now_us
  done;
  !total

(* --- scenario catalog (DESIGN.md §15) --- *)

let scenario ?(signers = default_spec.signers) ?(verifiers = default_spec.verifiers)
    ?(seed = default_spec.seed) name =
  let base = { default_spec with signers; verifiers; seed } in
  match name with
  | "steady" -> Some base
  | "kilo" ->
      (* a thousand signers on few verifiers: the fan-in the loadctl
         plane exists for *)
      Some { base with signers = max signers 1000; zones = 8 }
  | "diurnal" ->
      Some { base with profile = Diurnal { period_us = 10_000_000.0; peak = 4.0 } }
  | "spike4x" ->
      Some
        {
          base with
          profile = Spike { at_us = 2_000_000.0; dur_us = 2_000_000.0; magnitude = 4.0 };
        }
  | "zone_outage" ->
      Some { base with outages = [ { zone = 0; from_us = 1_000_000.0; until_us = 3_000_000.0 } ] }
  | "churny" -> Some { base with churn = Some { up_us = 800_000.0; down_us = 200_000.0 } }
  | _ -> None

let scenario_names = [ "steady"; "kilo"; "diurnal"; "spike4x"; "zone_outage"; "churny" ]

let describe t =
  let s = t.spec in
  let profile =
    match s.profile with
    | Steady -> "steady"
    | Diurnal { period_us; peak } -> Printf.sprintf "diurnal(period=%.0fus peak=%.1fx)" period_us peak
    | Spike { at_us; dur_us; magnitude } ->
        Printf.sprintf "spike(at=%.0fus dur=%.0fus %.1fx)" at_us dur_us magnitude
  in
  Printf.sprintf
    "%d signers, %d verifiers, %d zones, fanout %d, %.0f ops/s/signer, %s, %d outage(s), churn %s"
    s.signers s.verifiers s.zones s.fanout s.base_rate_per_sec profile (List.length s.outages)
    (match s.churn with
    | None -> "off"
    | Some c -> Printf.sprintf "up=%.0fus/down=%.0fus" c.up_us c.down_us)
