(** Fleet-scale scenario generation (DESIGN.md §15).

    Parameterizes populations of hundreds to thousands of signers over
    tens of verifiers, with client churn, zone outages and time-varying
    load profiles — all as {e pure deterministic functions of virtual
    time}. The module never touches the event loop; a driver
    ([Dsig_deploy.Fleetrun], [bench fleet], the fault-matrix tests)
    queries it for "is signer [i] active at [t], at what rate, toward
    which verifiers" and spawns its own processes accordingly. Same
    spec + same seed reproduces the same fleet exactly. *)

(** Global load multiplier over time. [Diurnal] sweeps a raised cosine
    between 1x (trough) and [peak] (crest) with the given period;
    [Spike] applies [magnitude] inside one window and 1x outside. *)
type profile =
  | Steady
  | Diurnal of { period_us : float; peak : float }
  | Spike of { at_us : float; dur_us : float; magnitude : float }

type outage = { zone : int; from_us : float; until_us : float }
(** Every signer in [zone] is silent during [\[from_us, until_us)]. *)

type churn = { up_us : float; down_us : float }
(** Per-client square wave: up for [up_us], down for [down_us], with a
    per-signer hashed phase so the fleet churns asynchronously. *)

type spec = {
  signers : int;
  verifiers : int;
  zones : int;  (** nodes are assigned round-robin by index *)
  fanout : int;  (** verifiers per signer, 1..verifiers *)
  seed : int64;
  base_rate_per_sec : float;  (** per-signer offered load at 1x *)
  profile : profile;
  outages : outage list;
  churn : churn option;
}

val default_spec : spec
(** 100 signers, 10 verifiers, 4 zones, fanout 3, 200 ops/s per signer,
    steady, no outages, no churn. *)

type t

val create : spec -> t
(** @raise Invalid_argument on non-positive populations, a [fanout]
    outside [1..verifiers], out-of-range outage zones, empty outage
    windows, or non-positive rates/periods. *)

val spec : t -> spec

(** {1 Topology} *)

val zone_of_signer : t -> signer:int -> int
val zone_of_verifier : t -> verifier:int -> int

val verifiers_of : t -> signer:int -> int list
(** The [fanout] distinct verifier indices signer [signer] sends to —
    seed-stable, spread evenly across the verifier population. *)

(** {1 Load over time}

    All times are virtual microseconds (the simulator's clock). *)

val load : t -> now_us:float -> float
(** The profile's global multiplier at [now_us] (>= 1). *)

val active : t -> signer:int -> now_us:float -> bool
(** Whether the signer is up: not inside its zone's outage window and
    not churned out. *)

val rate : t -> signer:int -> now_us:float -> float
(** The signer's offered rate in ops/s: [base_rate_per_sec * load] when
    active, 0 otherwise. *)

val send_interval_us : t -> signer:int -> now_us:float -> float option
(** Microseconds between sends at the current rate; [None] when the
    signer is inactive (the driver should re-poll after a idle tick). *)

val offered_rate_per_sec : t -> now_us:float -> float
(** Fleet-wide offered load at [now_us] (sum over all signers). *)

(** {1 Scenario catalog} *)

val scenario : ?signers:int -> ?verifiers:int -> ?seed:int64 -> string -> spec option
(** Named presets (DESIGN.md §15): ["steady"], ["kilo"] (>= 1000
    signers), ["diurnal"] (4x peak, 10 s period), ["spike4x"] (4x for
    2 s), ["zone_outage"], ["churny"]. [None] for unknown names. *)

val scenario_names : string list

val describe : t -> string
(** One human-readable line summarizing the spec. *)
