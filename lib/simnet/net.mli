(** Point-to-point network model.

    A message from [src] to [dst] of [bytes] experiences, in order:
    serialization on the sender's NIC ([bytes]/tx bandwidth, a shared
    FIFO resource — the bottleneck of the paper's one-to-many experiment
    §8.5), a propagation plus per-byte software delay (the ~1 µs "+ ~0.6
    ns/B" slope measured in §8.2), and serialization on the receiver's
    NIC (the inbound bottleneck of §8.6). Bandwidth is configurable
    per-node to reproduce the 10 Gbps-capped experiments. *)

type 'a t

val create :
  Sim.t ->
  nodes:int ->
  ?latency_us:float ->
  ?per_byte_us:float ->
  ?bandwidth_gbps:float ->
  unit ->
  'a t
(** Defaults: latency 1.0 µs, per-byte software delay 0.0006 µs/B,
    bandwidth 100 Gbps on every NIC. *)

val sim : 'a t -> Sim.t
val set_bandwidth : 'a t -> node:int -> gbps:float -> unit

val set_faults :
  'a t ->
  ?drop:float ->
  ?duplicate:float ->
  ?corrupt:float ->
  ?reorder:float ->
  ?reorder_delay_us:float ->
  ?mutate:('a -> 'a option) ->
  seed:int64 ->
  unit ->
  unit
(** Inject message-level faults at delivery time: each message is
    dropped with probability [drop] and (if not dropped) delivered twice
    with probability [duplicate]. Each surviving copy is then corrupted
    with probability [corrupt] — the payload is passed through [mutate]
    (typically: serialize, flip a bit, re-decode), and a [None] result
    (or an absent [mutate]) loses the copy, modeling a frame the
    receiver's decoder rejects. Finally, with probability [reorder] the
    copy is held back by a uniform extra delay in
    [\[0, reorder_delay_us\]] (default 20 µs) so later traffic overtakes
    it. Deterministic under [seed]. Applies to {!send}/{!send_async};
    {!inject} bypasses faults (local timers must fire). *)

val clear_faults : 'a t -> unit
(** Lift all injected faults; subsequent sends deliver normally. *)

val send : 'a t -> src:int -> dst:int -> bytes:int -> 'a -> unit
(** Blocking send: returns once the sender NIC finished serializing
    (backpressure); delivery happens asynchronously after propagation
    and receiver-side serialization. *)

val send_async : 'a t -> src:int -> dst:int -> bytes:int -> 'a -> unit
(** Fire-and-forget variant usable outside a process context. *)

val inject : 'a t -> node:int -> src:int -> 'a -> unit
(** Deliver a payload into a node's inbox immediately, bypassing the
    network model — local timer events and self-messages. *)

val recv : 'a t -> node:int -> int * int * 'a
(** Blocking receive: [(src, bytes, payload)]. *)

val recv_opt : 'a t -> node:int -> (int * int * 'a) option
val pending : 'a t -> node:int -> int
val tx_utilization : 'a t -> node:int -> float
val rx_utilization : 'a t -> node:int -> float
