(* Samples live in a growable array that is sorted in place at most once
   per batch of adds: [ensure_sorted] trims and sorts on the first query
   after an [add], and every later percentile/cdf/min/max call reuses
   that order until the next [add] invalidates it. The running [sum]
   keeps [mean] O(1). *)

type t = {
  name : string option;
  mutable data : float array;  (* capacity >= n; samples in [0, n) *)
  mutable n : int;
  mutable sorted : bool;
  mutable sum : float;
}

let create ?name () = { name; data = [||]; n = 0; sorted = true; sum = 0.0 }

let add t x =
  if t.n = Array.length t.data then begin
    let grown = Array.make (Stdlib.max 16 (2 * t.n)) 0.0 in
    Array.blit t.data 0 grown 0 t.n;
    t.data <- grown
  end;
  t.data.(t.n) <- x;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  t.sorted <- false

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

let ensure_sorted t =
  if not t.sorted then begin
    if Array.length t.data <> t.n then t.data <- Array.sub t.data 0 t.n;
    Array.sort compare t.data;
    t.sorted <- true
  end;
  t.data

let recorder_name t = match t.name with Some n -> Printf.sprintf "%S" n | None -> "<unnamed>"

let percentile t p =
  if t.n = 0 then
    invalid_arg
      (Printf.sprintf
         "Stats.percentile: recorder %s is empty (no samples were added before querying)"
         (recorder_name t));
  let a = ensure_sorted t in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) - 1 in
  a.(Stdlib.max 0 (Stdlib.min (t.n - 1) rank))

let min t = percentile t 0.0
let max t = percentile t 100.0

let cdf ?(points = 100) t =
  if t.n = 0 then []
  else begin
    let a = ensure_sorted t in
    List.init points (fun i ->
        let frac = float_of_int (i + 1) /. float_of_int points in
        let idx = Stdlib.min (t.n - 1) (int_of_float (frac *. float_of_int t.n) - 1) in
        (a.(Stdlib.max 0 idx), frac))
  end

let summary t =
  if t.n = 0 then "n=0"
  else
    Printf.sprintf "p10=%.2f p50=%.2f p90=%.2f p99=%.2f mean=%.2f n=%d" (percentile t 10.0)
      (percentile t 50.0) (percentile t 90.0) (percentile t 99.0) (mean t) t.n
