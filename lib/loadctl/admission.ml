(* Verifier-side admission control (DESIGN.md §15).

   A saturated DSig verifier is not just slower — it is qualitatively
   worse: once the fast path falls behind, cache misses cascade into
   inline EdDSA on the critical path and latency collapses. This module
   gives the verifier an explicit overload story instead: every unit of
   work is classified (fast-path verify, slow-path repair, control) and
   must take a token from its class bucket before any crypto runs.

   Capacity is discovered, not configured. A single admitted rate R
   adapts by AIMD on a CoDel-style congestion signal: callers feed
   sojourn samples (queue delay, or verify-span duration where no queue
   is visible) through [observe]; if the *minimum* sojourn over a whole
   interval stays above the target, the node is genuinely backed up
   (not just seeing a burst) and R is cut multiplicatively. Each
   uncongested interval earns a fixed additive increase, so R probes
   back up to the real capacity after a spike.

   Shed priority is encoded in how the class buckets derive from R:

   - [Control] (announcements, ACKs, repair replies) is never shed —
     control frames are tiny and dropping them converts a load problem
     into a reliability problem (more re-announcements, more load).
   - [Verify] (fast path: batch root cached, one Merkle check) refills
     at the full rate R.
   - [Repair] (slow path: inline EdDSA, orders of magnitude dearer)
     refills at [repair_share]·R, and while the controller is in the
     congested state it is shed entirely — exactly the cascade the
     fast/slow split makes dangerous.

   The controller also exports a [pressure] byte (0..255) summarising
   recent shed probability; the verifier piggybacks it on ACK frames
   (Batch.Credit) so signers pace down loaded destinations.

   All entry points are mutex-protected and never call out while
   holding the lock, so any domain of the verifier pool (and any
   tcpnet thread) may call them. *)

module Tel = Dsig_telemetry.Telemetry
module Metric = Dsig_telemetry.Metric

type cls = Verify | Repair | Control

let cls_name = function Verify -> "verify" | Repair -> "repair" | Control -> "control"

type verdict = Admit | Shed

type params = {
  target_sojourn_us : float;
  interval_us : float;
  initial_rate_per_sec : float;
  min_rate_per_sec : float;
  max_rate_per_sec : float;
  additive_per_sec : float;
  beta : float;
  burst : float;
  repair_share : float;
}

let default_params =
  {
    target_sojourn_us = 500.0;
    interval_us = 10_000.0;
    initial_rate_per_sec = 50_000.0;
    min_rate_per_sec = 500.0;
    max_rate_per_sec = 5_000_000.0;
    additive_per_sec = 5_000.0;
    beta = 0.7;
    burst = 64.0;
    repair_share = 0.25;
  }

type stats = {
  offered_verify : int;
  shed_verify : int;
  offered_repair : int;
  shed_repair : int;
  offered_control : int;
  shed_control : int;
}

let offered_total s = s.offered_verify + s.offered_repair + s.offered_control
let shed_total s = s.shed_verify + s.shed_repair + s.shed_control

type tel_handles = {
  c_admitted : Metric.Counter.t;
  c_shed : Metric.Counter.t;
  c_shed_verify : Metric.Counter.t;
  c_shed_repair : Metric.Counter.t;
  g_rate : Metric.Gauge.t;
  g_pressure : Metric.Gauge.t;
  g_congested : Metric.Gauge.t;
  h_sojourn : Metric.Histogram.t;
}

type t = {
  p : params;
  mu : Mutex.t;
  mutable rate : float;  (* admitted tokens/sec, AIMD-adapted *)
  mutable verify_tokens : float;
  mutable repair_tokens : float;
  mutable last_refill_us : float option;
  mutable congested : bool;
  mutable interval_end_us : float option;
  mutable interval_min_us : float;  (* min sojourn seen this interval *)
  mutable ewma_shed : float;  (* recent shed probability, 0..1 *)
  mutable s_offered_verify : int;
  mutable s_shed_verify : int;
  mutable s_offered_repair : int;
  mutable s_shed_repair : int;
  mutable s_offered_control : int;
  th : tel_handles;
}

let validate p =
  if p.target_sojourn_us <= 0.0 then invalid_arg "Admission: target_sojourn_us must be > 0";
  if p.interval_us <= 0.0 then invalid_arg "Admission: interval_us must be > 0";
  if p.min_rate_per_sec <= 0.0 then invalid_arg "Admission: min_rate_per_sec must be > 0";
  if p.max_rate_per_sec < p.min_rate_per_sec then
    invalid_arg "Admission: max_rate_per_sec < min_rate_per_sec";
  if p.initial_rate_per_sec < p.min_rate_per_sec || p.initial_rate_per_sec > p.max_rate_per_sec
  then invalid_arg "Admission: initial_rate_per_sec outside [min, max]";
  if not (p.beta > 0.0 && p.beta < 1.0) then invalid_arg "Admission: beta must be in (0, 1)";
  if p.burst < 1.0 then invalid_arg "Admission: burst must be >= 1";
  if not (p.repair_share > 0.0 && p.repair_share <= 1.0) then
    invalid_arg "Admission: repair_share must be in (0, 1]"

let create ?(params = default_params) ?(telemetry = Tel.default) () =
  validate params;
  let th =
    {
      c_admitted = Tel.counter telemetry "dsig_loadctl_admitted_total";
      c_shed = Tel.counter telemetry "dsig_loadctl_shed_total";
      c_shed_verify = Tel.counter telemetry "dsig_loadctl_shed_verify_total";
      c_shed_repair = Tel.counter telemetry "dsig_loadctl_shed_repair_total";
      g_rate = Tel.gauge telemetry "dsig_loadctl_rate_per_sec";
      g_pressure = Tel.gauge telemetry "dsig_loadctl_pressure";
      g_congested = Tel.gauge telemetry "dsig_loadctl_congested";
      h_sojourn = Tel.histogram telemetry "dsig_loadctl_sojourn_us";
    }
  in
  Metric.Gauge.set th.g_rate params.initial_rate_per_sec;
  {
    p = params;
    mu = Mutex.create ();
    rate = params.initial_rate_per_sec;
    verify_tokens = params.burst;
    repair_tokens = params.burst *. params.repair_share;
    last_refill_us = None;
    congested = false;
    interval_end_us = None;
    interval_min_us = infinity;
    ewma_shed = 0.0;
    s_offered_verify = 0;
    s_shed_verify = 0;
    s_offered_repair = 0;
    s_shed_repair = 0;
    s_offered_control = 0;
    th;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Close the current CoDel interval if [now_us] has passed its end:
   an interval whose minimum sojourn never dipped below the target is a
   standing queue → congested, multiplicative decrease; otherwise the
   interval was healthy (or idle — no samples at all) → clear the
   congested state and earn one additive increase. Call sites hold
   [t.mu]. *)
let roll_interval t ~now_us =
  match t.interval_end_us with
  | None -> t.interval_end_us <- Some (now_us +. t.p.interval_us)
  | Some end_us when now_us >= end_us ->
      (if t.interval_min_us > t.p.target_sojourn_us && t.interval_min_us < infinity then begin
         t.congested <- true;
         t.rate <- Float.max t.p.min_rate_per_sec (t.rate *. t.p.beta)
       end
       else begin
         t.congested <- false;
         t.rate <-
           Float.min t.p.max_rate_per_sec
             (t.rate +. (t.p.additive_per_sec *. (t.p.interval_us /. 1_000_000.0)))
       end);
      t.interval_min_us <- infinity;
      t.interval_end_us <- Some (now_us +. t.p.interval_us);
      Metric.Gauge.set t.th.g_rate t.rate;
      Metric.Gauge.set t.th.g_congested (if t.congested then 1.0 else 0.0)
  | Some _ -> ()

let refill t ~now_us =
  (match t.last_refill_us with
  | Some last when now_us > last ->
      let dt_s = (now_us -. last) /. 1_000_000.0 in
      t.verify_tokens <- Float.min t.p.burst (t.verify_tokens +. (t.rate *. dt_s));
      t.repair_tokens <-
        Float.min
          (t.p.burst *. t.p.repair_share)
          (t.repair_tokens +. (t.rate *. t.p.repair_share *. dt_s))
  | Some _ -> ()
  | None -> ());
  t.last_refill_us <- Some now_us

let note_outcome t shed =
  let alpha = 1.0 /. 32.0 in
  t.ewma_shed <- ((1.0 -. alpha) *. t.ewma_shed) +. (alpha *. if shed then 1.0 else 0.0)

let pressure_locked t =
  let base = Float.max t.ewma_shed (if t.congested then 0.25 else 0.0) in
  int_of_float (Float.round (255.0 *. Float.min 1.0 base))

let observe t ~now_us ~sojourn_us =
  if Float.is_finite sojourn_us && sojourn_us >= 0.0 then begin
    Metric.Histogram.add t.th.h_sojourn sojourn_us;
    locked t (fun () ->
        if sojourn_us < t.interval_min_us then t.interval_min_us <- sojourn_us;
        roll_interval t ~now_us)
  end

let admit t ~now_us cls =
  let v =
    locked t (fun () ->
        roll_interval t ~now_us;
        refill t ~now_us;
        match cls with
        | Control ->
            t.s_offered_control <- t.s_offered_control + 1;
            Admit
        | Verify ->
            t.s_offered_verify <- t.s_offered_verify + 1;
            if t.verify_tokens >= 1.0 then begin
              t.verify_tokens <- t.verify_tokens -. 1.0;
              note_outcome t false;
              Admit
            end
            else begin
              t.s_shed_verify <- t.s_shed_verify + 1;
              note_outcome t true;
              Shed
            end
        | Repair ->
            t.s_offered_repair <- t.s_offered_repair + 1;
            if t.congested then begin
              t.s_shed_repair <- t.s_shed_repair + 1;
              note_outcome t true;
              Shed
            end
            else if t.repair_tokens >= 1.0 then begin
              t.repair_tokens <- t.repair_tokens -. 1.0;
              note_outcome t false;
              Admit
            end
            else begin
              t.s_shed_repair <- t.s_shed_repair + 1;
              note_outcome t true;
              Shed
            end)
  in
  (match v with
  | Admit -> Metric.Counter.incr t.th.c_admitted
  | Shed ->
      Metric.Counter.incr t.th.c_shed;
      (match cls with
      | Verify -> Metric.Counter.incr t.th.c_shed_verify
      | Repair -> Metric.Counter.incr t.th.c_shed_repair
      | Control -> ()));
  Metric.Gauge.set t.th.g_pressure (float_of_int (locked t (fun () -> pressure_locked t)));
  v

let congested t = locked t (fun () -> t.congested)
let rate_per_sec t = locked t (fun () -> t.rate)
let pressure t = locked t (fun () -> pressure_locked t)

let stats t =
  locked t (fun () ->
      {
        offered_verify = t.s_offered_verify;
        shed_verify = t.s_shed_verify;
        offered_repair = t.s_offered_repair;
        shed_repair = t.s_shed_repair;
        offered_control = t.s_offered_control;
        shed_control = 0;
      })

let to_json t =
  let s = stats t in
  let congested, rate, pressure =
    locked t (fun () -> (t.congested, t.rate, pressure_locked t))
  in
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"schema\":\"dsig-loadctl-v1\"";
  Buffer.add_string b (Printf.sprintf ",\"rate_per_sec\":%.1f" rate);
  Buffer.add_string b (Printf.sprintf ",\"congested\":%b" congested);
  Buffer.add_string b (Printf.sprintf ",\"pressure\":%d" pressure);
  Buffer.add_string b ",\"classes\":[";
  List.iteri
    (fun i (cls, offered, shed) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"class\":%S,\"offered\":%d,\"shed\":%d}" (cls_name cls) offered shed))
    [
      (Verify, s.offered_verify, s.shed_verify);
      (Repair, s.offered_repair, s.shed_repair);
      (Control, s.offered_control, s.shed_control);
    ];
  Buffer.add_string b "]}";
  Buffer.contents b
