(** Verifier-side admission control: per-class token buckets whose
    refill rate adapts by AIMD on a CoDel-style queue-delay signal
    (DESIGN.md §15).

    The verifier classifies every unit of work — fast-path verify,
    slow-path repair, control — and asks [admit] for a token before any
    crypto runs. A [Shed] verdict means the work is refused outright
    (counted, surfaced in telemetry, reflected in the exported
    {!pressure} byte) rather than queued into a latency collapse.

    Congestion is detected CoDel-style: callers feed queue-sojourn
    samples through {!observe}; when the {e minimum} sojourn over a
    whole interval stays above the target, the admitted rate is cut
    multiplicatively, and each healthy (or idle) interval earns an
    additive increase back towards the real capacity.

    Shed order is fixed by construction: [Control] is never shed,
    [Repair] (inline EdDSA) refills at a fraction of the verify rate
    and is shed entirely while congested, [Verify] refills at the full
    adapted rate. So under overload the slow path goes first and the
    fast path degrades last — the graceful half of the paper's
    fast/slow split.

    All operations are thread- and domain-safe. *)

type cls = Verify | Repair | Control

val cls_name : cls -> string

type verdict = Admit | Shed

type params = {
  target_sojourn_us : float;  (** CoDel target: sojourns above this signal congestion *)
  interval_us : float;  (** CoDel interval the minimum sojourn is tracked over *)
  initial_rate_per_sec : float;
  min_rate_per_sec : float;
  max_rate_per_sec : float;
  additive_per_sec : float;  (** AIMD increase per uncongested second *)
  beta : float;  (** AIMD multiplicative decrease factor, in (0, 1) *)
  burst : float;  (** verify-bucket depth in tokens *)
  repair_share : float;  (** repair rate and depth as a fraction of verify's *)
}

val default_params : params

type t

val create : ?params:params -> ?telemetry:Dsig_telemetry.Telemetry.t -> unit -> t
(** Raises [Invalid_argument] on nonsensical parameters. Registers the
    [dsig_loadctl_*] series on [telemetry] (default bundle otherwise);
    instances sharing a bundle accumulate into the same series. *)

val admit : t -> now_us:float -> cls -> verdict
(** Take one token from the class bucket. [Control] always admits.
    Timestamps come from the caller's clock (wall or virtual) and must
    be monotone per instance. *)

val observe : t -> now_us:float -> sojourn_us:float -> unit
(** Feed one queue-delay sample (microseconds a unit of work waited
    before service — or, where no queue is visible, the verify-span
    duration). Negative and non-finite samples are ignored. *)

val congested : t -> bool
(** Whether the last closed interval's minimum sojourn exceeded the
    target (the CoDel "standing queue" state). *)

val rate_per_sec : t -> float
(** The current AIMD-adapted admitted rate (verify-class tokens/sec). *)

val pressure : t -> int
(** Back-pressure summary in [0, 255]: 0 = unloaded, 255 = shedding
    everything. Piggybacked on ACK frames ([Batch.Credit]) so signers
    pace down loaded destinations. *)

(** {1 Introspection} *)

type stats = {
  offered_verify : int;
  shed_verify : int;
  offered_repair : int;
  shed_repair : int;
  offered_control : int;
  shed_control : int;  (** always 0: control is never shed *)
}

val stats : t -> stats
val offered_total : stats -> int
val shed_total : stats -> int

val to_json : t -> string
(** One-object JSON summary (schema ["dsig-loadctl-v1"]): adapted rate,
    congested flag, pressure byte, per-class offered/shed counts. The
    scrape endpoint serves this at [/loadctl]. *)
