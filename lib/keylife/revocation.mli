(** Signed revocation records — the wire format of the key-lifecycle
    plane's compromise response (§4.2: "revocation lists that
    applications check prior to signing or verifying messages").

    A record is a fixed-size [DSIGREV1] frame signed by a revoking
    {e authority} key (a deployment-level identity, distinct from every
    signer's): verifiers apply a record only after checking the
    authority signature, so the revocation channel itself cannot be
    forged by the party being revoked.

    {v
    DSIGREV1            8  magic
    signer     u32 LE   4  revoked process id
    epoch      u32 LE   4  PKI epoch the revocation names
    kind       u8       1  0 = total, 1 = batch boundary
    batch      u64 LE   8  first barred batch id (0 when total)
    issued_us  u64 LE   8  authority clock at issue time
    authority  u32 LE   4  issuing authority id
    sig        ed25519 64  over all prior bytes
    v}

    Enforcement is idempotent: replaying a record (gossip re-sends,
    duplicated control frames) is detected and reported as {!Replayed}
    without touching the directory again. *)

type boundary =
  | Total  (** bar everything, including previously issued signatures *)
  | From of int64
      (** bar batches with id [>= b]; earlier batches keep verifying —
          the shape used when the compromise window is known *)

type t = {
  rev_signer : int;
  rev_epoch : int;
  rev_boundary : boundary;
  rev_issued_us : int64;  (** authority clock (µs) at issue time *)
  rev_authority : int;
}

val size : int
(** Encoded record size in bytes (fixed). *)

val issue : authority_sk:Dsig_ed25519.Eddsa.secret_key -> t -> string
(** Encode and sign a record.
    @raise Invalid_argument on negative ids or batch boundary. *)

val decode : string -> (t, string) result
(** Parse without checking the signature (inspection only — enforcement
    must go through {!verify} or {!enforce}). *)

val verify : authority_pk:Dsig_ed25519.Eddsa.public_key -> string -> (t, string) result
(** Parse and check the authority signature. *)

(** What {!enforce} did with a record. *)
type outcome =
  | Applied of t  (** the directory was tightened *)
  | Replayed of t
      (** valid, but the directory already enforces at least this much *)
  | Rejected of string  (** malformed or bad authority signature *)

val enforce :
  pki:Dsig.Pki.t ->
  authority_pk:Dsig_ed25519.Eddsa.public_key ->
  ?purge:(signer:int -> from_batch:int64 option -> unit) ->
  string ->
  outcome
(** Verify a record and apply it to the directory ({!Dsig.Pki.revoke} /
    {!Dsig.Pki.revoke_from}). [purge] runs only on first application
    (not on replays) — wire it to {!Dsig.Verifier.purge_signer} so
    batch roots admitted before the revocation arrived stop serving the
    fast path. *)
