(** Zero-downtime rotation coordinator.

    Drives a {!Dsig.Signer}'s two-step rotation protocol
    ({!Dsig.Signer.stage_next_batch} then {!Dsig.Signer.cutover}) with
    an announce-and-wait policy: the staged batch's announcement is
    multicast when staged, and the coordinator cuts over once every
    destination has acknowledged it — or once [max_wait_us] elapses, so
    a partitioned verifier cannot hold the rotation hostage (it will
    pull-repair the new batch on its first slow path instead).

    Crash safety lives below this module, in the store's journaled
    propose/confirm records: a crash at any point mid-rotation recovers
    to exactly one live generation. The coordinator only decides
    {e when} to confirm. *)

type t

type progress =
  | Idle  (** no rotation in flight *)
  | Staged of { epoch : int; batch_id : int64; unacked : int }
      (** staged, waiting on [unacked] announcement acknowledgements *)
  | Cut_over of int  (** cutover happened (now serving this epoch) *)

val create : ?max_wait_us:float -> clock:(unit -> float) -> Dsig.Signer.t -> t
(** [max_wait_us] (default 50 ms) bounds how long a staged rotation
    waits for acknowledgements before cutting over anyway. [clock]
    supplies "now" in the same time base the deployment's telemetry
    uses (wall or virtual µs).
    @raise Invalid_argument if [max_wait_us] is negative. *)

val start : t -> int * int64
(** Stage the next-generation batch (journal, announce) and start the
    ACK wait. Returns the staged [(epoch, batch_id)].
    @raise Invalid_argument if a rotation is already staged. *)

val step : t -> progress
(** Poll once: cut over if every destination acknowledged or the wait
    expired, otherwise report what is still outstanding. Also detects a
    cutover the signer performed implicitly (default queue drained
    mid-rotation) and reports it as {!Cut_over}. Drive this from the
    same loop as {!Dsig.Signer.background_step}. *)

val rotate_now : t -> int
(** Stage and cut over immediately, without waiting for
    acknowledgements — verifiers that miss the announcement repair via
    pull. Returns the new epoch.
    @raise Invalid_argument if a rotation is already staged. *)

val in_flight : t -> bool
