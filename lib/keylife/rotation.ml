module Signer = Dsig.Signer

type t = {
  signer : Signer.t;
  clock : unit -> float;
  max_wait_us : float;
  mutable started_at : float option; (* Some while a rotation we drove is in flight *)
}

type progress =
  | Idle
  | Staged of { epoch : int; batch_id : int64; unacked : int }
  | Cut_over of int

let create ?(max_wait_us = 50_000.0) ~clock signer =
  if max_wait_us < 0.0 then invalid_arg "Rotation.create: max_wait_us must be non-negative";
  { signer; clock; max_wait_us; started_at = None }

let start t =
  match Signer.staged_rotation t.signer with
  | Some _ -> invalid_arg "Rotation.start: a rotation is already staged"
  | None ->
      let staged = Signer.stage_next_batch t.signer in
      t.started_at <- Some (t.clock ());
      staged

let step t =
  match Signer.staged_rotation t.signer with
  | None ->
      if t.started_at = None then Idle
      else begin
        (* the signer cut over on its own (default queue drained) *)
        t.started_at <- None;
        Cut_over (Signer.epoch t.signer)
      end
  | Some (epoch, batch_id) ->
      let unacked = Option.value ~default:0 (Signer.staged_unacked t.signer) in
      let expired =
        match t.started_at with
        | Some s -> t.clock () -. s >= t.max_wait_us
        | None -> true (* staged by someone else: we only see it settled *)
      in
      if unacked = 0 || expired then begin
        t.started_at <- None;
        Cut_over (Signer.cutover t.signer)
      end
      else Staged { epoch; batch_id; unacked }

let rotate_now t =
  ignore (start t);
  t.started_at <- None;
  Signer.cutover t.signer

let in_flight t = Signer.staged_rotation t.signer <> None
