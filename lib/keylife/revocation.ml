module BU = Dsig_util.Bytesutil
module Eddsa = Dsig_ed25519.Eddsa
module Pki = Dsig.Pki

type boundary = Total | From of int64

type t = {
  rev_signer : int;
  rev_epoch : int;
  rev_boundary : boundary;
  rev_issued_us : int64;
  rev_authority : int;
}

let magic = "DSIGREV1"
let body_size = String.length magic + 4 + 4 + 1 + 8 + 8 + 4
let size = body_size + Eddsa.signature_size

let body r =
  let kind, batch =
    match r.rev_boundary with Total -> ('\000', 0L) | From b -> ('\001', b)
  in
  String.concat ""
    [
      magic;
      BU.u32_le (Int32.of_int r.rev_signer);
      BU.u32_le (Int32.of_int r.rev_epoch);
      String.make 1 kind;
      BU.u64_le batch;
      BU.u64_le r.rev_issued_us;
      BU.u32_le (Int32.of_int r.rev_authority);
    ]

let issue ~authority_sk r =
  (match r.rev_boundary with
  | From b when Int64.compare b 0L < 0 ->
      invalid_arg "Revocation.issue: negative batch boundary"
  | _ -> ());
  if r.rev_signer < 0 || r.rev_epoch < 0 || r.rev_authority < 0 then
    invalid_arg "Revocation.issue: negative id";
  let b = body r in
  b ^ Eddsa.sign authority_sk b

let decode s =
  if String.length s <> size then
    Error (Printf.sprintf "revocation: expected %d bytes, got %d" size (String.length s))
  else if not (String.equal (String.sub s 0 8) magic) then Error "revocation: bad magic"
  else
    let rev_signer = Int32.to_int (BU.get_u32_le s 8) in
    let rev_epoch = Int32.to_int (BU.get_u32_le s 12) in
    let kind = s.[16] in
    let batch = BU.get_u64_le s 17 in
    let rev_issued_us = BU.get_u64_le s 25 in
    let rev_authority = Int32.to_int (BU.get_u32_le s 33) in
    if rev_signer < 0 || rev_epoch < 0 || rev_authority < 0 then
      Error "revocation: id out of range"
    else
      match kind with
      | '\000' when Int64.equal batch 0L ->
          Ok { rev_signer; rev_epoch; rev_boundary = Total; rev_issued_us; rev_authority }
      | '\000' -> Error "revocation: total revocation with nonzero batch"
      | '\001' when Int64.compare batch 0L >= 0 ->
          Ok { rev_signer; rev_epoch; rev_boundary = From batch; rev_issued_us; rev_authority }
      | '\001' -> Error "revocation: negative batch boundary"
      | _ -> Error "revocation: bad boundary kind"

let verify ~authority_pk s =
  match decode s with
  | Error _ as e -> e
  | Ok r ->
      if
        Eddsa.verify authority_pk (String.sub s 0 body_size)
          (String.sub s body_size Eddsa.signature_size)
      then Ok r
      else Error "revocation: authority signature check failed"

type outcome = Applied of t | Replayed of t | Rejected of string

let enforce ~pki ~authority_pk ?purge encoded =
  match verify ~authority_pk encoded with
  | Error e -> Rejected e
  | Ok r ->
      (* a replay is any record that cannot tighten what the directory
         already enforces — applying it again must be a visible no-op so
         the gossip layer can re-send records freely *)
      let already =
        match (Pki.revocation pki r.rev_signer, r.rev_boundary) with
        | `Total, _ -> true
        | `From b, From b' -> Int64.compare b b' <= 0
        | `From _, Total | `None, _ -> false
      in
      if already then Replayed r
      else begin
        (match r.rev_boundary with
        | Total -> Pki.revoke pki r.rev_signer
        | From b -> Pki.revoke_from pki ~id:r.rev_signer ~batch:b);
        (match purge with
        | None -> ()
        | Some f ->
            f ~signer:r.rev_signer
              ~from_batch:(match r.rev_boundary with Total -> None | From b -> Some b));
        Applied r
      end
