module Translog = Dsig_translog.Translog
module Checkpoint = Dsig_translog.Checkpoint
module Wire = Dsig.Wire

type report = {
  imp_signer : int;
  imp_from_batch : int64 option;
  imp_until_batch : int64 option;
  imp_log_entries : int;
  imp_affected : int;
  imp_batches : (int64 * int) list;
  imp_first_index : int option;
  imp_last_index : int option;
  imp_undecodable : int;
  imp_checkpointed : int;
  imp_checkpoint_size : int;
}

let in_window ~from_batch ~until_batch batch =
  (match from_batch with None -> true | Some lo -> Int64.compare batch lo >= 0)
  && match until_batch with None -> true | Some hi -> Int64.compare batch hi < 0

let analyze ~log ~signer ?from_batch ?until_batch ?(checkpoint_size = 0) () =
  let n = Translog.size log in
  let ckpt_size =
    match Translog.latest_checkpoint log with
    | Some cp -> Stdlib.max checkpoint_size cp.Checkpoint.tree_size
    | None -> checkpoint_size
  in
  let affected = ref 0 in
  let undecodable = ref 0 in
  let checkpointed = ref 0 in
  let first = ref None in
  let last = ref None in
  let batches = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    match Translog.entry log i with
    | None -> ()
    | Some e when e.Translog.signer = signer ->
        (* the wire header carries (signer, batch): that is what decides
           whether this signature falls inside the compromise window.
           Headers that fail to parse are counted as affected — the
           bound must be conservative. *)
        let hit =
          match Wire.peek_header e.Translog.signature with
          | Some (_, batch) ->
              if in_window ~from_batch ~until_batch batch then begin
                Hashtbl.replace batches batch
                  (1 + Option.value ~default:0 (Hashtbl.find_opt batches batch));
                true
              end
              else false
          | None ->
              incr undecodable;
              true
        in
        if hit then begin
          incr affected;
          if i < ckpt_size then incr checkpointed;
          if !first = None then first := Some i;
          last := Some i
        end
    | Some _ -> ()
  done;
  {
    imp_signer = signer;
    imp_from_batch = from_batch;
    imp_until_batch = until_batch;
    imp_log_entries = n;
    imp_affected = !affected;
    imp_batches =
      List.sort
        (fun (a, _) (b, _) -> Int64.compare a b)
        (Hashtbl.fold (fun b c acc -> (b, c) :: acc) batches []);
    imp_first_index = !first;
    imp_last_index = !last;
    imp_undecodable = !undecodable;
    imp_checkpointed = !checkpointed;
    imp_checkpoint_size = ckpt_size;
  }

let pp ppf r =
  let window =
    match (r.imp_from_batch, r.imp_until_batch) with
    | None, None -> "all batches"
    | Some lo, None -> Printf.sprintf "batches >= %Ld" lo
    | None, Some hi -> Printf.sprintf "batches < %Ld" hi
    | Some lo, Some hi -> Printf.sprintf "batches [%Ld, %Ld)" lo hi
  in
  Format.fprintf ppf "signer %d, %s: %d of %d logged signatures affected@." r.imp_signer
    window r.imp_affected r.imp_log_entries;
  (match (r.imp_first_index, r.imp_last_index) with
  | Some a, Some b -> Format.fprintf ppf "  log index range: [%d, %d]@." a b
  | _ -> ());
  if r.imp_undecodable > 0 then
    Format.fprintf ppf "  %d undecodable wire headers (counted as affected)@."
      r.imp_undecodable;
  Format.fprintf ppf "  checkpoint coverage: %d/%d under the latest head (tree size %d)@."
    r.imp_checkpointed r.imp_affected r.imp_checkpoint_size;
  List.iter
    (fun (b, c) -> Format.fprintf ppf "  batch %Ld: %d signature%s@." b c (if c = 1 then "" else "s"))
    r.imp_batches
