(** Compromise containment: bound what a stolen key could have signed.

    Walks the transparency log — the append-only record of every
    signature the deployment issued — selecting entries attributed to
    the compromised signer whose wire header falls inside the suspected
    batch window, and reports the affected set together with how much of
    it is already covered by a published checkpoint (and is therefore
    provable to third parties via inclusion proofs).

    The bound is conservative: log entries whose signature bytes no
    longer parse still count as affected. *)

type report = {
  imp_signer : int;
  imp_from_batch : int64 option;  (** window start (inclusive), if any *)
  imp_until_batch : int64 option;  (** window end (exclusive), if any *)
  imp_log_entries : int;  (** total entries walked *)
  imp_affected : int;  (** entries inside the compromise window *)
  imp_batches : (int64 * int) list;
      (** affected signatures per batch id, ascending *)
  imp_first_index : int option;  (** first affected log index *)
  imp_last_index : int option;  (** last affected log index *)
  imp_undecodable : int;
      (** affected entries whose wire header failed to parse *)
  imp_checkpointed : int;
      (** affected entries below the latest checkpoint's tree size *)
  imp_checkpoint_size : int;  (** latest checkpoint tree size; 0 = none *)
}

val analyze :
  log:Dsig_translog.Translog.t ->
  signer:int ->
  ?from_batch:int64 ->
  ?until_batch:int64 ->
  ?checkpoint_size:int ->
  unit ->
  report
(** Walk the whole log once. [from_batch]/[until_batch] bound the
    compromise window ([from_batch] inclusive, [until_batch] exclusive
    — batch ids come from the signature wire headers); with neither,
    every signature by [signer] is affected (total compromise).

    [checkpoint_size] (default 0) is a floor on the coverage horizon
    for logs opened read-only: {!Dsig_translog.Translog.latest_checkpoint}
    only knows checkpoints published by {e this} process, so offline
    analyzers pass the recovered anchor size — the anchor is persisted
    at checkpoint time, so everything under it was attested by some
    published head. The larger of the two is used. *)

val pp : Format.formatter -> report -> unit
(** Human-readable rendering (the [dsig_cli impact] output). *)
