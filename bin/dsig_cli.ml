(* dsig — command-line front end to the DSig signature system.

   Signatures produced here are self-standing (§4.2): `verify` needs
   only the signer's Ed25519 public key, exercising the slow path of
   Algorithm 2; inside an application deployment the background plane
   would make verification fast. *)

open Cmdliner
module BU = Dsig_util.Bytesutil

let config_of ~d ~batch = Dsig.Config.make ~batch_size:batch ~queue_threshold:batch (Dsig.Config.wots ~d)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* --- keygen --- *)

let keygen out =
  let rng = Dsig_util.Rng.system () in
  let sk, pk = Dsig_ed25519.Eddsa.generate rng in
  write_file out (BU.to_hex (Dsig_ed25519.Eddsa.seed_of_secret sk) ^ "\n");
  Printf.printf "secret seed written to %s\n" out;
  Printf.printf "public key: %s\n" (BU.to_hex pk);
  0

let out_arg =
  Arg.(value & opt string "dsig.key" & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Secret-key output file.")

let keygen_cmd =
  Cmd.v
    (Cmd.info "keygen" ~doc:"Generate an Ed25519 identity for DSig signing.")
    Term.(const keygen $ out_arg)

(* --- common args --- *)

let key_arg =
  Arg.(required & opt (some string) None & info [ "k"; "key" ] ~docv:"FILE" ~doc:"Secret-key file from $(b,keygen).")

let msg_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"MESSAGE" ~doc:"Message string, or @FILE to read a file.")

let d_arg = Arg.(value & opt int 4 & info [ "d" ] ~doc:"W-OTS+ depth (power of two).")
let batch_arg = Arg.(value & opt int 16 & info [ "batch" ] ~doc:"EdDSA batch size (power of two).")

let load_msg m = if String.length m > 0 && m.[0] = '@' then read_file (String.sub m 1 (String.length m - 1)) else m

(* --- sign --- *)

let sign key_file msg_spec sig_out d batch =
  let seed = BU.of_hex (String.trim (read_file key_file)) in
  let sk = Dsig_ed25519.Eddsa.secret_of_seed seed in
  let cfg = config_of ~d ~batch in
  let rng = Dsig_util.Rng.system () in
  let signer = Dsig.Signer.create cfg ~id:0 ~eddsa:sk ~rng ~verifiers:[ 0 ] () in
  let msg = load_msg msg_spec in
  let signature = Dsig.Signer.sign signer msg in
  write_file sig_out signature;
  Printf.printf "signed %d-byte message; %d-byte DSig signature written to %s\n"
    (String.length msg) (String.length signature) sig_out;
  Printf.printf "verify with public key: %s\n" (BU.to_hex (Dsig_ed25519.Eddsa.public_key sk));
  0

let sig_out_arg =
  Arg.(value & opt string "message.dsig" & info [ "s"; "signature" ] ~docv:"FILE" ~doc:"Signature output file.")

let sign_cmd =
  Cmd.v
    (Cmd.info "sign" ~doc:"Sign a message with DSig (W-OTS+ over Haraka + batched Ed25519).")
    Term.(const sign $ key_arg $ msg_arg $ sig_out_arg $ d_arg $ batch_arg)

(* --- verify --- *)

let verify pk_hex msg_spec sig_file d batch =
  let cfg = config_of ~d ~batch in
  let pki = Dsig.Pki.create () in
  Dsig.Pki.bind pki ~id:0 ~epoch:0 (BU.of_hex pk_hex);
  let verifier = Dsig.Verifier.create cfg ~id:1 ~pki () in
  let msg = load_msg msg_spec in
  let signature = read_file sig_file in
  if Dsig.Verifier.verify verifier ~msg signature then begin
    Printf.printf "OK: signature valid for the %d-byte message\n" (String.length msg);
    0
  end
  else begin
    Printf.printf "FAILED: signature invalid\n";
    1
  end

let pk_arg =
  Arg.(required & opt (some string) None & info [ "p"; "public-key" ] ~docv:"HEX" ~doc:"Signer's Ed25519 public key (hex).")

let sig_in_arg =
  Arg.(value & opt string "message.dsig" & info [ "s"; "signature" ] ~docv:"FILE" ~doc:"Signature file.")

let verify_cmd =
  Cmd.v
    (Cmd.info "verify" ~doc:"Verify a DSig signature (self-standing slow path).")
    Term.(const verify $ pk_arg $ msg_arg $ sig_in_arg $ d_arg $ batch_arg)

(* --- inspect --- *)

let inspect sig_file d batch =
  let cfg = config_of ~d ~batch in
  let signature = read_file sig_file in
  (match Dsig.Wire.decode cfg signature with
  | Error e -> Printf.printf "undecodable: %s\n" e
  | Ok w ->
      Printf.printf "scheme:      %s\n" (Dsig.Config.describe cfg);
      Printf.printf "total bytes: %d\n" (String.length signature);
      Printf.printf "signer id:   %d\n" w.Dsig.Wire.signer_id;
      Printf.printf "batch id:    %Ld\n" w.Dsig.Wire.batch_id;
      Printf.printf "key index:   %d\n" (Dsig.Wire.key_index w);
      Printf.printf "public seed: %s\n" (BU.to_hex w.Dsig.Wire.public_seed);
      (match w.Dsig.Wire.body with
      | Dsig.Wire.Wots_body s ->
          Printf.printf "W-OTS+ elements: %d x %d bytes, nonce %s\n"
            (Array.length s.Dsig_hbss.Wots.elements)
            (String.length s.Dsig_hbss.Wots.elements.(0))
            (BU.to_hex s.Dsig_hbss.Wots.nonce)
      | Dsig.Wire.Hors_fact_body { hsig; complement } ->
          Printf.printf "HORS revealed: %d, complement: %d\n"
            (Array.length hsig.Dsig_hbss.Hors.revealed)
            (Array.length complement)
      | Dsig.Wire.Hors_merk_body { hsig; roots; proofs } ->
          Printf.printf "HORS revealed: %d, roots: %d, proofs: %d\n"
            (Array.length hsig.Dsig_hbss.Hors.revealed)
            (Array.length roots) (Array.length proofs)
      | Dsig.Wire.Hors_merk_mp_body { hsig; roots; mps } ->
          Printf.printf "HORS revealed: %d, roots: %d, multiproofs: %d\n"
            (Array.length hsig.Dsig_hbss.Hors.revealed)
            (Array.length roots) (List.length mps)));
  0

let inspect_cmd =
  Cmd.v
    (Cmd.info "inspect" ~doc:"Decode and print the structure of a DSig signature.")
    Term.(const inspect $ sig_in_arg $ d_arg $ batch_arg)

(* --- audit-log commands --- *)

let log_arg =
  Arg.(value & opt string "dsig.log" & info [ "l"; "log" ] ~docv:"FILE" ~doc:"Audit-log file.")

let client_arg =
  Arg.(value & opt int 0 & info [ "c"; "client" ] ~docv:"ID" ~doc:"Client (signer) id recorded in the log.")

let log_sign key_file msg_spec log_file client d batch =
  let seed = BU.of_hex (String.trim (read_file key_file)) in
  let sk = Dsig_ed25519.Eddsa.secret_of_seed seed in
  let cfg = config_of ~d ~batch in
  let rng = Dsig_util.Rng.system () in
  let signer = Dsig.Signer.create cfg ~id:client ~eddsa:sk ~rng ~verifiers:[ client ] () in
  let op = load_msg msg_spec in
  let signature = Dsig.Signer.sign signer op in
  let w = Dsig_audit.Logfile.open_writer log_file in
  Fun.protect
    ~finally:(fun () -> Dsig_audit.Logfile.close_writer w)
    (fun () -> Dsig_audit.Logfile.append ~sync:true w ~client ~op ~signature);
  Printf.printf "appended signed entry (%d B op, %d B signature) to %s\n" (String.length op)
    (String.length signature) log_file;
  Printf.printf "audit with public key: %s\n" (BU.to_hex (Dsig_ed25519.Eddsa.public_key sk));
  0

let log_sign_cmd =
  Cmd.v
    (Cmd.info "log-sign" ~doc:"Sign an operation and append it to a durable audit log.")
    Term.(const log_sign $ key_arg $ msg_arg $ log_arg $ client_arg $ d_arg $ batch_arg)

let signer_pks_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "signer" ] ~docv:"ID=PKHEX" ~doc:"Client id to Ed25519 public key binding (repeatable).")

let log_audit log_file signer_pks d batch =
  let cfg = config_of ~d ~batch in
  let pki = Dsig.Pki.create () in
  List.iter
    (fun spec ->
      match String.index_opt spec '=' with
      | Some i ->
          let id = int_of_string (String.sub spec 0 i) in
          let pk = BU.of_hex (String.sub spec (i + 1) (String.length spec - i - 1)) in
          Dsig.Pki.bind pki ~id ~epoch:0 pk
      | None -> failwith ("bad --signer spec: " ^ spec))
    signer_pks;
  match Dsig_audit.Logfile.load log_file with
  | Error e ->
      Printf.printf "cannot load %s: %s\n" log_file e;
      1
  | Ok log ->
      let verifier = Dsig.Verifier.create cfg ~id:(-1) ~pki () in
      let (valid, invalid), bad =
        Dsig_audit.Audit.audit log ~verify:(fun ~client:_ ~msg s ->
            Dsig.Verifier.verify verifier ~msg s)
      in
      Printf.printf "%d entries: %d valid, %d invalid\n" (Dsig_audit.Audit.length log) valid
        invalid;
      List.iter
        (fun e ->
          Printf.printf "  INVALID entry %d (client %d, %d B op)\n" e.Dsig_audit.Audit.index
            e.Dsig_audit.Audit.client
            (String.length e.Dsig_audit.Audit.op))
        bad;
      if invalid = 0 then 0 else 1

let log_audit_cmd =
  Cmd.v
    (Cmd.info "log-audit" ~doc:"Third-party audit of a durable signed log.")
    Term.(const log_audit $ log_arg $ signer_pks_arg $ d_arg $ batch_arg)

(* --- stats --- *)

(* Run a self-contained sign/verify workload on a fresh telemetry
   bundle and print the resulting snapshot. Demonstrates the full
   metrics plane: the signer's background refills, the verifier's
   fast/slow path split (announcements are delivered between batches,
   so early signatures verify slow and later ones fast), and the span
   tracer under --trace. *)
let stats ops fmt trace d batch =
  let module Tel = Dsig_telemetry.Telemetry in
  let tel = Tel.create () in
  if trace then Dsig_telemetry.Tracer.enable tel.Tel.tracer;
  let cfg = config_of ~d ~batch in
  let rng = Dsig_util.Rng.create 11L in
  let sk, pk = Dsig_ed25519.Eddsa.generate rng in
  let pki = Dsig.Pki.create () in
  Dsig.Pki.bind pki ~id:0 ~epoch:0 pk;
  let signer = Dsig.Signer.create cfg ~id:0 ~eddsa:sk ~rng
    ~options:(Dsig.Options.default |> Dsig.Options.with_telemetry tel)
    ~verifiers:[ 1 ] () in
  let verifier = Dsig.Verifier.create cfg ~id:1 ~pki
    ~options:(Dsig.Options.default |> Dsig.Options.with_telemetry tel) () in
  Dsig.Signer.background_fill signer;
  for i = 1 to ops do
    List.iter
      (fun (_, a) -> ignore (Dsig.Verifier.deliver verifier a))
      (Dsig.Signer.drain_outbox signer);
    let msg = Printf.sprintf "stats workload #%d" i in
    let signature = Dsig.Signer.sign signer msg in
    if not (Dsig.Verifier.verify verifier ~msg signature) then
      failwith "stats workload: signature unexpectedly rejected";
    if i mod (batch / 2) = 0 then Dsig.Signer.background_fill signer
  done;
  let snap = Tel.snapshot tel in
  (match fmt with
  | `Human -> print_string (Dsig_telemetry.Export.summary snap)
  | `Json -> print_endline (Dsig_telemetry.Export.json ~tracer:tel.Tel.tracer snap)
  | `Prometheus -> print_string (Dsig_telemetry.Export.prometheus snap));
  0

let ops_arg =
  Arg.(value & opt int 200 & info [ "n"; "ops" ] ~docv:"N" ~doc:"Number of sign+verify operations to run.")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("human", `Human); ("json", `Json); ("prometheus", `Prometheus) ]) `Human
    & info [ "f"; "format" ] ~docv:"FORMAT" ~doc:"Output format: $(b,human), $(b,json) or $(b,prometheus).")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Enable the span tracer (shown in json output).")

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Run a sign/verify workload and print its telemetry snapshot.")
    Term.(const stats $ ops_arg $ format_arg $ trace_arg $ d_arg $ batch_arg)

(* --- top --- *)

(* Poll a scrape endpoint's /planes route and render a refreshing
   per-plane latency table. Without --port, runs a self-contained demo:
   a signer/verifier pair with lifecycle tracing enabled, published
   through a local scrape server that the watcher then polls — the same
   path an external Prometheus or `dsig top` against a real service
   would take. *)
let top port interval count d batch =
  let module Tel = Dsig_telemetry.Telemetry in
  let module Lifecycle = Dsig_telemetry.Lifecycle in
  let module Scrape = Dsig_tcpnet.Scrape in
  let cleanup, port =
    match port with
    | Some p -> ((fun () -> ()), p)
    | None ->
        let tel = Tel.create () in
        Lifecycle.enable tel.Tel.lifecycle;
        let cfg = config_of ~d ~batch in
        let rng = Dsig_util.Rng.create 17L in
        let sk, pk = Dsig_ed25519.Eddsa.generate rng in
        let pki = Dsig.Pki.create () in
        Dsig.Pki.bind pki ~id:0 ~epoch:0 pk;
        let signer =
          Dsig.Signer.create cfg ~id:0 ~eddsa:sk ~rng
    ~options:(Dsig.Options.default |> Dsig.Options.with_telemetry tel)
    ~verifiers:[ 1 ] ()
        in
        let verifier = Dsig.Verifier.create cfg ~id:1 ~pki
    ~options:(Dsig.Options.default |> Dsig.Options.with_telemetry tel) () in
        let stop = ref false in
        let worker =
          Thread.create
            (fun () ->
              let i = ref 0 in
              while not !stop do
                incr i;
                Dsig.Signer.background_fill signer;
                List.iter
                  (fun (_, a) -> ignore (Dsig.Verifier.deliver verifier a))
                  (Dsig.Signer.drain_outbox signer);
                let msg = Printf.sprintf "top demo #%d" !i in
                let signature, ctx = Dsig.Signer.sign_ctx signer msg in
                ignore (Dsig.Verifier.verify_ctx verifier ~ctx ~msg signature);
                Thread.delay 0.002
              done)
            ()
        in
        let srv = Scrape.start ~telemetry:tel ~port:0 () in
        Printf.printf "demo scrape server on 127.0.0.1:%d (/metrics /metrics.json /trace /planes)\n%!"
          (Scrape.port srv);
        ( (fun () ->
            stop := true;
            (try Thread.join worker with _ -> ());
            Scrape.stop srv),
          Scrape.port srv )
  in
  let render ~tick body =
    if tick > 1 then print_string "\027[H\027[2J";
    Printf.printf "dsig top — 127.0.0.1:%d/planes — refresh %d\n\n" port tick;
    let heads = ref [] and planes = ref [] in
    List.iter
      (fun line ->
        match String.split_on_char ' ' (String.trim line) with
        | [ k; v ] -> heads := (k, v) :: !heads
        | [ name; n; p50; p99; p999 ] -> planes := (name, n, p50, p99, p999) :: !planes
        | _ -> ())
      (String.split_on_char '\n' body);
    List.iter (fun (k, v) -> Printf.printf "%-10s %s\n" k v) (List.rev !heads);
    Printf.printf "\n%-14s %10s %12s %12s %12s\n" "plane" "count" "p50 (us)" "p99 (us)" "p99.9 (us)";
    List.iter
      (fun (name, n, p50, p99, p999) ->
        Printf.printf "%-14s %10s %12s %12s %12s\n" name n p50 p99 p999)
      (List.rev !planes);
    Printf.printf "\n%!"
  in
  let rc = ref 0 in
  let tick = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    incr tick;
    (match Scrape.fetch ~port ~path:"/planes" with
    | Ok body -> render ~tick:!tick body
    | Error e ->
        Printf.printf "fetch 127.0.0.1:%d/planes failed: %s\n%!" port e;
        rc := 1;
        continue_ := false);
    if count > 0 && !tick >= count then continue_ := false;
    if !continue_ then Thread.delay interval
  done;
  cleanup ();
  !rc

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "p"; "port" ] ~docv:"PORT"
        ~doc:"Scrape-endpoint port on 127.0.0.1 to poll. Omit to run a self-contained demo.")

let interval_arg =
  Arg.(value & opt float 1.0 & info [ "i"; "interval" ] ~docv:"SECONDS" ~doc:"Refresh interval.")

let count_arg =
  Arg.(
    value & opt int 5
    & info [ "c"; "count" ] ~docv:"N" ~doc:"Number of refreshes; 0 runs until interrupted.")

let top_cmd =
  Cmd.v
    (Cmd.info "top" ~doc:"Watch per-plane signature lifecycle latencies from a scrape endpoint.")
    Term.(const top $ port_arg $ interval_arg $ count_arg $ d_arg $ batch_arg)

(* --- timeline: sparkline history of sampled metric series --- *)

(* Render the ring-buffered series behind a /timeseries route (or a
   dumped JSON body) as one sparkline per metric. Counter series show
   per-sample increments (the interesting signal); gauges show raw
   values. *)
let spark_cells = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                     "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline values =
  match values with
  | [] -> ""
  | _ ->
      let lo = List.fold_left Float.min infinity values in
      let hi = List.fold_left Float.max neg_infinity values in
      let cell v =
        if hi <= lo then spark_cells.(0)
        else
          let level = int_of_float ((v -. lo) /. (hi -. lo) *. 7.0 +. 0.5) in
          spark_cells.(max 0 (min 7 level))
      in
      String.concat "" (List.map cell values)

let string_contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let timeline port file metric width interval count =
  let module Ts = Dsig_timeseries in
  let module Scrape = Dsig_tcpnet.Scrape in
  let render ~tick ~source body =
    match Ts.Sampler.of_json body with
    | Error e ->
        Printf.printf "timeline: %s does not parse as a timeseries dump: %s\n%!" source e;
        1
    | Ok rows ->
        let rows =
          List.filter (fun (name, _, _) -> string_contains name metric) rows
        in
        if tick > 1 then print_string "\027[H\027[2J";
        Printf.printf "dsig timeline — %s — %d series%s\n\n" source (List.length rows)
          (if metric = "" then "" else Printf.sprintf " matching %S" metric);
        let name_w =
          List.fold_left (fun acc (n, _, _) -> max acc (String.length n)) 6 rows
        in
        List.iter
          (fun (name, kind, points) ->
            let values = List.map snd points in
            (* counters plot per-sample increments, clamped so a
               restart's reset never draws a negative spike *)
            let values =
              match kind with
              | Ts.Series.Gauge -> values
              | Ts.Series.Counter -> (
                  match values with
                  | [] -> []
                  | first :: _ ->
                      List.rev
                        (snd
                           (List.fold_left
                              (fun (prev, acc) v -> (v, Float.max 0.0 (v -. prev) :: acc))
                              (first, []) values)))
            in
            let tail =
              let n = List.length values in
              if n <= width then values
              else List.filteri (fun i _ -> i >= n - width) values
            in
            let last = match List.rev tail with v :: _ -> v | [] -> 0.0 in
            Printf.printf "%-*s %-7s %s %.6g\n" name_w name
              (Ts.Series.kind_to_string kind) (sparkline tail) last)
          rows;
        Printf.printf "\n%!";
        0
  in
  match (port, file) with
  | None, Some f ->
      let ic = open_in_bin f in
      let body = really_input_string ic (in_channel_length ic) in
      close_in ic;
      render ~tick:1 ~source:f body
  | _ ->
      (* like `top`: without --port, run a self-contained demo — a
         signer/verifier pair whose registry a sampler folds every
         tick, published through a local scrape server the watcher
         then polls over real HTTP *)
      let cleanup, p =
        match port with
        | Some p -> ((fun () -> ()), p)
        | None ->
            let module Tel = Dsig_telemetry.Telemetry in
            let tel = Tel.create () in
            let cfg = config_of ~d:4 ~batch:16 in
            let rng = Dsig_util.Rng.create 17L in
            let sk, pk = Dsig_ed25519.Eddsa.generate rng in
            let pki = Dsig.Pki.create () in
            Dsig.Pki.bind pki ~id:0 ~epoch:0 pk;
            let options = Dsig.Options.default |> Dsig.Options.with_telemetry tel in
            let signer = Dsig.Signer.create cfg ~id:0 ~eddsa:sk ~rng ~options ~verifiers:[ 1 ] () in
            let verifier = Dsig.Verifier.create cfg ~id:1 ~pki ~options () in
            let sampler = Ts.Sampler.create ~interval_us:10_000.0 tel.Tel.registry in
            let vstats = Dsig.Verifier.stats verifier in
            Ts.Sampler.probe sampler ~name:"demo_verifier_fast_total" ~kind:Ts.Series.Counter
              (fun () -> float_of_int vstats.Dsig.Verifier.fast);
            let alerts = Ts.Alert.create ~telemetry:tel sampler [] in
            let stop = ref false in
            let worker =
              Thread.create
                (fun () ->
                  let i = ref 0 in
                  while not !stop do
                    incr i;
                    Dsig.Signer.background_fill signer;
                    List.iter
                      (fun (_, a) -> ignore (Dsig.Verifier.deliver verifier a))
                      (Dsig.Signer.drain_outbox signer);
                    let msg = Printf.sprintf "timeline demo #%d" !i in
                    let signature = Dsig.Signer.sign signer msg in
                    ignore (Dsig.Verifier.verify verifier ~msg signature);
                    if Ts.Sampler.sample sampler ~now_us:(Tel.now tel) then
                      ignore (Ts.Alert.step alerts ~now_us:(Tel.now tel));
                    Thread.delay 0.002
                  done)
                ()
            in
            let srv = Scrape.start ~telemetry:tel ~timeseries:sampler ~alerts ~port:0 () in
            Printf.printf "demo scrape server on 127.0.0.1:%d (/timeseries /alerts)\n%!"
              (Scrape.port srv);
            ( (fun () ->
                stop := true;
                (try Thread.join worker with _ -> ());
                Scrape.stop srv),
              Scrape.port srv )
      in
      let rc = ref 0 in
      let tick = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        incr tick;
        (match Scrape.fetch ~port:p ~path:"/timeseries" with
        | Ok body -> rc := render ~tick:!tick ~source:(Printf.sprintf "127.0.0.1:%d/timeseries" p) body
        | Error e ->
            Printf.printf "fetch 127.0.0.1:%d/timeseries failed: %s\n%!" p e;
            rc := 1;
            continue_ := false);
        if count > 0 && !tick >= count then continue_ := false;
        if !continue_ then Thread.delay interval
      done;
      cleanup ();
      !rc

let timeline_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "f"; "file" ] ~docv:"FILE" ~doc:"Render a dumped /timeseries JSON body instead of polling.")

let timeline_metric_arg =
  Arg.(
    value & opt string ""
    & info [ "m"; "metric" ] ~docv:"SUBSTRING" ~doc:"Only series whose name contains this.")

let timeline_width_arg =
  Arg.(value & opt int 60 & info [ "w"; "width" ] ~docv:"POINTS" ~doc:"Sparkline width in points.")

let timeline_cmd =
  Cmd.v
    (Cmd.info "timeline"
       ~doc:
         "Render sparkline metric history from a live /timeseries scrape route or a dumped \
          JSON body.")
    Term.(
      const timeline $ port_arg $ timeline_file_arg $ timeline_metric_arg $ timeline_width_arg
      $ interval_arg $ count_arg)

(* --- monitor: independent split-view watching of a transparency log --- *)

let monitor endpoints pk_hex log_id interval count =
  let module Serve = Dsig_translog.Serve in
  let module Monitor = Dsig_translog.Monitor in
  let module Checkpoint = Dsig_translog.Checkpoint in
  if endpoints = [] then begin
    prerr_endline "monitor: at least one --endpoint is required";
    1
  end
  else begin
    let pk = Dsig_util.Bytesutil.of_hex pk_hex in
    let mon =
      Monitor.create ~log_id
        ~verify:(fun ~msg ~signature -> Dsig_ed25519.Eddsa.verify pk msg signature)
        ()
    in
    let alarmed = ref false in
    let tick = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      incr tick;
      List.iter
        (fun port ->
          let source = Printf.sprintf "127.0.0.1:%d" port in
          match Serve.fetch_checkpoint ~port () with
          | Error e -> Printf.printf "%s: unreachable: %s\n%!" source e
          | Ok cp -> (
              let fetch_consistency ~old_size ~new_size =
                Serve.fetch_consistency ~port ~old_size ~new_size ()
              in
              match Monitor.observe mon ~source cp ~fetch_consistency with
              | Monitor.Advanced ->
                  Printf.printf "%s: size %d root %s — head advanced\n%!" source
                    cp.Checkpoint.tree_size
                    (Dsig_util.Bytesutil.to_hex cp.Checkpoint.root)
              | Monitor.Stale -> Printf.printf "%s: size %d — stale but consistent\n%!" source cp.Checkpoint.tree_size
              | Monitor.Duplicate -> Printf.printf "%s: size %d — unchanged\n%!" source cp.Checkpoint.tree_size
              | Monitor.Alarmed a ->
                  Printf.printf "%s: ALARM: %s\n%!" source (Monitor.alarm_to_string a);
                  alarmed := true))
        endpoints;
      if count > 0 && !tick >= count then continue_ := false;
      if !alarmed then continue_ := false;
      if !continue_ then Thread.delay interval
    done;
    (match Monitor.head mon with
    | Some h ->
        Printf.printf "monitor head: size %d root %s (%d alarms)\n%!" h.Checkpoint.tree_size
          (Dsig_util.Bytesutil.to_hex h.Checkpoint.root)
          (List.length (Monitor.alarms mon))
    | None -> print_endline "monitor: no checkpoint ever accepted");
    if !alarmed then 2 else 0
  end

let endpoint_arg =
  Arg.(
    value & opt_all int []
    & info [ "e"; "endpoint" ] ~docv:"PORT"
        ~doc:
          "Transparency-log proof endpoint on 127.0.0.1 (repeatable — poll several vantage \
           points to catch split views).")

let log_pk_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "public-key" ] ~docv:"HEX" ~doc:"The log identity's Ed25519 public key (hex).")

let log_id_arg =
  Arg.(value & opt int 0 & info [ "log-id" ] ~doc:"Expected log id in checkpoints.")

let monitor_cmd =
  Cmd.v
    (Cmd.info "monitor"
       ~doc:
         "Poll transparency-log checkpoints from one or more endpoints, verify consistency \
          proofs between successive heads, and exit 2 on any split-view or consistency alarm.")
    Term.(const monitor $ endpoint_arg $ log_pk_arg $ log_id_arg $ interval_arg $ count_arg)

(* --- analyze --- *)

let analyze () =
  Printf.printf "%-14s %12s %10s %14s %10s\n" "config" "crit hashes" "sig B" "keygen hashes" "bg B/sig";
  List.iter
    (fun r ->
      Printf.printf "%-14s %12.0f %10d %14d %10.1f\n" r.Dsig.Analysis.label
        r.Dsig.Analysis.critical_hashes r.Dsig.Analysis.signature_bytes
        r.Dsig.Analysis.keygen_hashes r.Dsig.Analysis.bg_bytes_per_sig)
    (Dsig.Analysis.table2 ());
  0

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze" ~doc:"Print the analytical configuration comparison (paper Table 2).")
    Term.(const analyze $ const ())

(* --- durable key-store commands --- *)

module Keystate = Dsig_store.Keystate

let store_dir_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"Key-store directory (a signer's $(b,Options.with_store) target).")

let print_scan (s : Keystate.scan) =
  (match s.Keystate.scan_snapshot with
  | None -> print_endline "snapshot: none"
  | Some snap ->
      Printf.printf "snapshot: seq=%Ld next_batch_id=%Ld batches=%d fingerprint=%s\n"
        snap.Dsig_store.Snapshot.seq snap.Dsig_store.Snapshot.next_batch_id
        (List.length snap.Dsig_store.Snapshot.batches)
        (match snap.Dsig_store.Snapshot.fingerprint with "" -> "-" | fp -> fp));
  List.iter
    (fun (seq, (r : Dsig_store.Wal.recovery)) ->
      Printf.printf "segment wal-%016Ld: %d records, %d/%d bytes%s\n" seq
        (List.length r.Dsig_store.Wal.records)
        r.Dsig_store.Wal.valid_bytes r.Dsig_store.Wal.total_bytes
        (match r.Dsig_store.Wal.torn with
        | None -> ""
        | Some why -> Printf.sprintf " (torn tail: %s)" why))
    s.Keystate.scan_segments;
  List.iter
    (fun (id, (b : Keystate.batch_state)) ->
      Printf.printf "batch %Ld: size=%d high_water=%d\n" id b.Keystate.size b.Keystate.high_water)
    s.Keystate.scan_state;
  Printf.printf "next_batch_id: %Ld\n" s.Keystate.scan_next_batch_id;
  Printf.printf "epoch: %d\n" s.Keystate.scan_epoch;
  (match s.Keystate.scan_pending_rotation with
  | None -> ()
  | Some (e, b) -> Printf.printf "pending rotation: epoch %d at batch %Ld (unconfirmed)\n" e b);
  List.iter
    (fun (e, b) -> Printf.printf "rotation: epoch %d confirmed at batch %Ld\n" e b)
    s.Keystate.scan_rotations;
  Printf.printf "clean shutdown: %b\n" s.Keystate.scan_clean

let store_inspect dir =
  match Keystate.scan ~dir with
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
  | Ok s ->
      print_scan s;
      0

let store_verify dir =
  match Keystate.scan ~dir with
  | Error e ->
      Printf.eprintf "corrupt: %s\n" e;
      2
  | Ok s when s.Keystate.scan_torn ->
      print_scan s;
      print_endline "status: TORN (a crash cut the journal tail; run `dsig store recover`)";
      1
  | Ok s ->
      print_scan s;
      print_endline (if s.Keystate.scan_clean then "status: OK (clean)" else "status: OK (crashed, tail intact)");
      0

let group_commit_arg =
  Arg.(
    value & opt int 8
    & info [ "g"; "group-commit" ]
        ~doc:"Group-commit size the crashed signer ran with (bounds the keys burned by recovery).")

let store_recover dir group_commit =
  match Keystate.open_ (Keystate.config ~group_commit dir) with
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
  | Ok (t, report) ->
      Printf.printf "recovered: snapshot=%b segments=%d records=%d clean=%b\n"
        report.Keystate.had_snapshot report.Keystate.segments_replayed
        report.Keystate.records_replayed report.Keystate.clean;
      if report.Keystate.torn_segments > 0 then
        Printf.printf "torn tails truncated: %d segment(s), %d byte(s)\n"
          report.Keystate.torn_segments report.Keystate.torn_bytes;
      List.iter
        (fun (id, first, n) -> Printf.printf "burned: batch %Ld keys %d..%d\n" id first (first + n - 1))
        report.Keystate.burned;
      List.iter
        (fun (id, idx) -> Printf.printf "resume: batch %Ld at key %d\n" id idx)
        report.Keystate.resume;
      Printf.printf "next_batch_id: %Ld\n" report.Keystate.next_batch_id;
      Keystate.close t;
      print_endline "store checkpointed and closed clean";
      0

let store_cmd =
  Cmd.group
    (Cmd.info "store" ~doc:"Inspect and repair a signer's durable key-state store (DESIGN.md §10).")
    [
      Cmd.v
        (Cmd.info "inspect" ~doc:"Print the snapshot, WAL segments and live batch state, read-only.")
        Term.(const store_inspect $ store_dir_arg);
      Cmd.v
        (Cmd.info "verify"
           ~doc:
             "Read-only integrity check: exit 0 if the store is intact, 1 on a torn journal \
              tail, 2 on corruption.")
        Term.(const store_verify $ store_dir_arg);
      Cmd.v
        (Cmd.info "recover"
           ~doc:
             "Run crash recovery now: truncate torn tails, burn the unfsynced key gap, fold \
              everything into a fresh snapshot and close clean.")
        Term.(const store_recover $ store_dir_arg $ group_commit_arg);
    ]
(* --- impact: bound what a stolen key could have signed --- *)

(* The compromise-containment query of the key-lifecycle plane: walk
   the deployment's transparency log for the compromised signer's
   signatures inside the suspected batch window. The window comes from
   an explicit --from-batch/--until-batch pair, or from a rotation
   EPOCH resolved against the signer's key-state journal (each
   confirmed rotation record names the batch id its epoch started
   at). *)
let impact log_dir store_dir from_batch until_batch signer epoch =
  let fail msg =
    Printf.printf "%s\n" msg;
    1
  in
  let window_of_epoch e =
    match store_dir with
    | None -> Error "an EPOCH argument needs --store to resolve rotation boundaries"
    | Some dir -> (
        match Dsig_store.Keystate.scan ~dir with
        | Error err -> Error err
        | Ok s -> (
            let rots = s.Dsig_store.Keystate.scan_rotations in
            let start = if e = 0 then Some 0L else List.assoc_opt e rots in
            match start with
            | None ->
                Error
                  (Printf.sprintf
                     "epoch %d has no rotation record in %s (rotations older than the last \
                      snapshot are folded away — use --from-batch)"
                     e dir)
            | Some lo ->
                Ok ((if e = 0 then None else Some lo), List.assoc_opt (e + 1) rots)))
  in
  let window =
    match (from_batch, until_batch) with
    | None, None -> ( match epoch with None -> Ok (None, None) | Some e -> window_of_epoch e)
    | lo, hi -> Ok (lo, hi)
  in
  match window with
  | Error e -> fail e
  | Ok (from_batch, until_batch) -> (
      match Dsig_translog.Translog.open_ ~fsync:false ~dir:log_dir () with
      | Error e -> fail (Printf.sprintf "cannot open transparency log %s: %s" log_dir e)
      | Ok (log, recovery) ->
          (* a read-only open has no in-process checkpoints; the
             recovered anchor pins what published heads attested *)
          let r =
            Dsig_keylife.Impact.analyze ~log ~signer ?from_batch ?until_batch
              ~checkpoint_size:recovery.Dsig_translog.Translog.anchor_size ()
          in
          Dsig_translog.Translog.close log;
          Format.printf "%a@?" Dsig_keylife.Impact.pp r;
          0)

let impact_log_arg =
  Arg.(
    required
    & opt (some dir) None
    & info [ "log" ] ~docv:"DIR" ~doc:"Transparency-log directory to walk.")

let impact_store_arg =
  Arg.(
    value
    & opt (some dir) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:"The signer's key-state store, used to resolve EPOCH to a batch window.")

let impact_from_arg =
  Arg.(
    value
    & opt (some int64) None
    & info [ "from-batch" ] ~docv:"B"
        ~doc:"Explicit window start (inclusive batch id); overrides EPOCH.")

let impact_until_arg =
  Arg.(
    value
    & opt (some int64) None
    & info [ "until-batch" ] ~docv:"B" ~doc:"Explicit window end (exclusive batch id).")

let impact_signer_arg =
  Arg.(required & pos 0 (some int) None & info [] ~docv:"SIGNER" ~doc:"Compromised signer id.")

let impact_epoch_arg =
  Arg.(
    value
    & pos 1 (some int) None
    & info [] ~docv:"EPOCH"
        ~doc:"Rotation epoch the stolen key belongs to (resolved via --store).")

let impact_cmd =
  Cmd.v
    (Cmd.info "impact"
       ~doc:"Bound what a stolen signer key could have signed (compromise containment)."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Walks the deployment's transparency log, selecting signatures attributed to the \
              compromised signer whose wire header falls inside the suspected batch window, \
              and prints the affected set per batch plus how much of it is covered by the \
              latest published checkpoint (provable to third parties via inclusion proofs).";
           `P
             "Without EPOCH or --from-batch, the whole history of the signer is reported \
              (total key compromise).";
         ])
    Term.(
      const impact $ impact_log_arg $ impact_store_arg $ impact_from_arg $ impact_until_arg
      $ impact_signer_arg $ impact_epoch_arg)

(* --- loadctl: watch an admission controller's live state --- *)

(* Poll a scrape endpoint's /loadctl route (Dsig_loadctl.Admission
   state: adapted rate, congested flag, pressure byte, per-class
   offered/shed counts) and print one JSON line per refresh. Without
   --port, run a self-contained demo: an admission controller squeezed
   well past its configured rate, published through a local scrape
   server the watcher then polls over real HTTP. *)
let loadctl_watch port interval count =
  let module Scrape = Dsig_tcpnet.Scrape in
  let module Admission = Dsig_loadctl.Admission in
  let module Tel = Dsig_telemetry.Telemetry in
  let cleanup, p =
    match port with
    | Some p -> ((fun () -> ()), p)
    | None ->
        let tel = Tel.create () in
        let params =
          {
            Admission.default_params with
            Admission.initial_rate_per_sec = 500.0;
            min_rate_per_sec = 50.0;
          }
        in
        let a = Admission.create ~params ~telemetry:tel () in
        let stop = ref false in
        let worker =
          Thread.create
            (fun () ->
              while not !stop do
                let now = Tel.now tel in
                (* ~2000 verify offers/sec against a 500/sec bucket,
                   with sojourns pinned above the CoDel target: the
                   controller goes congested, AIMD bites, repair sheds *)
                for _ = 1 to 10 do
                  ignore (Admission.admit a ~now_us:now Admission.Verify)
                done;
                ignore (Admission.admit a ~now_us:now Admission.Repair);
                Admission.observe a ~now_us:now
                  ~sojourn_us:(2.0 *. params.Admission.target_sojourn_us);
                Thread.delay 0.005
              done)
            ()
        in
        let srv = Scrape.start ~telemetry:tel ~loadctl:a ~port:0 () in
        Printf.printf "demo scrape server on 127.0.0.1:%d (/loadctl)\n%!" (Scrape.port srv);
        ( (fun () ->
            stop := true;
            (try Thread.join worker with _ -> ());
            Scrape.stop srv),
          Scrape.port srv )
  in
  let rc = ref 0 in
  let tick = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    incr tick;
    (match Scrape.fetch ~port:p ~path:"/loadctl" with
    | Ok body -> Printf.printf "%s\n%!" body
    | Error e ->
        Printf.printf "fetch 127.0.0.1:%d/loadctl failed: %s\n%!" p e;
        rc := 1;
        continue_ := false);
    if count > 0 && !tick >= count then continue_ := false;
    if !continue_ then Thread.delay interval
  done;
  cleanup ();
  !rc

let loadctl_cmd =
  Cmd.v
    (Cmd.info "loadctl"
       ~doc:
         "Watch a verifier's admission-control state (adapted rate, congestion, pressure, \
          per-class shed counts) from a scrape endpoint's /loadctl route.")
    Term.(const loadctl_watch $ port_arg $ interval_arg $ count_arg)

let main_cmd =
  Cmd.group
    (Cmd.info "dsig" ~version:"1.0.0"
       ~doc:"DSig: microsecond-scale hybrid digital signatures (OSDI 2024 reproduction).")
    [
      keygen_cmd;
      sign_cmd;
      verify_cmd;
      inspect_cmd;
      analyze_cmd;
      stats_cmd;
      top_cmd;
      timeline_cmd;
      loadctl_cmd;
      monitor_cmd;
      log_sign_cmd;
      log_audit_cmd;
      impact_cmd;
      store_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
