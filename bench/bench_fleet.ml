(* Fleet overload plane (DESIGN.md §15): drive a population of signers
   against admission-controlled verifiers at 1x/2x/4x the nominal load
   and measure what the load-control loop preserves. "1x" is the
   provisioned operating point — 50% of the fleet's fast-path
   saturation, the headroom a real deployment runs with — so 2x sits at
   saturation and 4x is a genuine 2x overload. The virtual clock makes
   every number deterministic: goodput and shed ratios are functions of
   the spec seed alone, which is what lets the smoke gate pin them. *)

open Dsig
module Fleet = Dsig_simnet.Fleet
module Fleetrun = Dsig_deploy.Fleetrun
module Admission = Dsig_loadctl.Admission

let run () =
  Harness.section "fleet: goodput and shed rate at 1x/2x/4x nominal load";
  let cfg = Config.make ~batch_size:32 ~queue_threshold:64 (Config.wots ~d:4) in
  let signers = Harness.scaled 200 in
  let verifiers = max 3 (signers / 25) in
  let service_us = 2_000.0 in
  let duration_us = 400_000.0 in
  let capacity = float_of_int verifiers *. 1.0e6 /. service_us in
  let nominal = 0.5 *. capacity in
  (* the CoDel target must clear one service time (a single queued item
     already waits [service_us]); congestion means a standing queue of
     several, persisting for a few round trips of the control loop *)
  let per_verifier = 1.0e6 /. service_us in
  let params =
    {
      Admission.default_params with
      Admission.target_sojourn_us = 3.0 *. service_us;
      interval_us = 25.0 *. service_us;
      (* provision the rate limit like an operator would: a little above
         the verifier's own service capacity, with gentle additive probing
         — the library default (50k ops/s) is sized for real-time crypto
         cost, not this fleet's modeled 2 ms service time *)
      initial_rate_per_sec = 1.2 *. per_verifier;
      min_rate_per_sec = 0.1 *. per_verifier;
      max_rate_per_sec = 4.0 *. per_verifier;
      additive_per_sec = 0.1 *. per_verifier;
      burst = 16.0;
    }
  in
  let run_at factor =
    let spec =
      {
        Fleet.default_spec with
        Fleet.signers;
        verifiers;
        fanout = min 3 verifiers;
        base_rate_per_sec = factor *. nominal /. float_of_int signers;
      }
    in
    (* a lossy announce plane (10% of announcement deliveries dropped
       until re-announce heals them) keeps an organic Repair-class load
       in the mix, so the shed metrics cover both admission classes *)
    Fleetrun.run ~latency_us:5.0 ~announce_latency_us:40.0 ~announce_drop:0.1 ~service_us
      ~params ~duration_us cfg (Fleet.create spec)
  in
  let r1 = run_at 1.0 in
  let r2 = run_at 2.0 in
  let r4 = run_at 4.0 in
  let retention = if r1.Fleetrun.goodput_ops_per_sec > 0.0 then
      r4.Fleetrun.goodput_ops_per_sec /. r1.Fleetrun.goodput_ops_per_sec
    else 0.0
  in
  let row label (r : Fleetrun.result) =
    [
      label;
      Printf.sprintf "%d" r.Fleetrun.offered;
      Printf.sprintf "%d" r.Fleetrun.accepted;
      Printf.sprintf "%.0f" r.Fleetrun.goodput_ops_per_sec;
      Printf.sprintf "%.3f" r.Fleetrun.shed_ratio;
      Printf.sprintf "%d" (Admission.shed_total r.Fleetrun.admission);
      Harness.us2 r.Fleetrun.sojourn_p99_us;
      Printf.sprintf "%d" r.Fleetrun.peak_pressure;
    ]
  in
  Harness.print_table
    ~header:
      [ "load"; "offered"; "accepted"; "goodput/s"; "shed ratio"; "shed"; "p99 sojourn us";
        "peak pressure" ]
    [ row "1x" r1; row "2x" r2; row "4x" r4 ];
  Printf.printf "%d signers x %d verifiers, %.0f us service, capacity %.0f ops/s, nominal %.0f ops/s\n"
    signers verifiers service_us capacity nominal;
  Printf.printf "goodput retention at 4x: %.2f (false accepts: %d/%d/%d)\n" retention
    r1.Fleetrun.false_accepts r2.Fleetrun.false_accepts r4.Fleetrun.false_accepts;
  Harness.metric "fleet_goodput_ops_per_sec_1x" r1.Fleetrun.goodput_ops_per_sec;
  Harness.metric "fleet_goodput_ops_per_sec_2x" r2.Fleetrun.goodput_ops_per_sec;
  Harness.metric "fleet_goodput_ops_per_sec_4x" r4.Fleetrun.goodput_ops_per_sec;
  Harness.metric "fleet_shed_ratio_1x" r1.Fleetrun.shed_ratio;
  Harness.metric "fleet_shed_ratio_2x" r2.Fleetrun.shed_ratio;
  Harness.metric "fleet_shed_ratio_4x" r4.Fleetrun.shed_ratio;
  Harness.metric "fleet_goodput_retention_4x" retention
