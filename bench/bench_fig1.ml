(* Figure 1: median latency breakdown — base application time vs
   cryptographic overhead — for the auditable KV store (HERD), CTB, and
   uBFT, under EdDSA (Dalek) and DSig. *)

module CM = Dsig_costmodel.Costmodel
open Dsig_bft

let median stats = Dsig_simnet.Stats.percentile stats 50.0

let run () =
  let requests = Harness.scaled 1000 in
  Harness.section "Figure 1: median latency breakdown (base + crypto overhead, us)";
  let dalek = Auth.eddsa_modeled ~name:"dalek" (Harness.cm ()) in
  let dsig = Auth.dsig_modeled (Harness.cm ()) Dsig.Config.default in
  let none = Auth.none in
  let rng () = Dsig_util.Rng.create 41L in
  let kv auth =
    median
      (App_harness.client_server ~auth ~exec_us:0.3 ~op_gen:(App_harness.herd_op (rng ()))
         ~requests ())
  in
  let ctb auth = median (App_harness.ctb_latency ~auth ~broadcasts:requests ()) in
  let ubft auth = median (App_harness.ubft_latency ~auth ~requests ()) in
  let row name f =
    let base = f none in
    let with_dalek = f dalek and with_dsig = f dsig in
    let line scheme total =
      [ Printf.sprintf "%s + %s" name scheme; Harness.us total; Harness.us base;
        Harness.us (total -. base) ]
    in
    [ line "eddsa" with_dalek; line "dsig" with_dsig ]
  in
  let rows = row "kv(herd)" kv @ row "ctb" ctb @ row "ubft" ubft in
  Harness.print_table ~header:[ "app"; "total"; "base"; "crypto overhead" ] rows;
  (* headline reductions *)
  let reduction f =
    let base = f Auth.none in
    let d = f dalek -. base and g = f dsig -. base in
    100.0 *. (1.0 -. (g /. d))
  in
  Printf.printf "\ncrypto-overhead reduction vs EdDSA: kv %.0f%%, ctb %.0f%%, ubft %.0f%%\n"
    (reduction kv) (reduction ctb) (reduction ubft);
  print_endline "(paper, Fig. 1: 86%, 82%, 87%)"
