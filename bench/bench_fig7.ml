(* Figure 7: end-to-end application latency (p10/p50/p90) for the five
   applications under Sodium, Dalek and DSig. *)

module CM = Dsig_costmodel.Costmodel
open Dsig_bft

let auths () =
  [
    ("sodium", Auth.eddsa_modeled ~name:"sodium" (Harness.cm_sodium ()));
    ("dalek", Auth.eddsa_modeled ~name:"dalek" (Harness.cm ()));
    ("dsig", Auth.dsig_modeled (Harness.cm ()) Dsig.Config.default);
  ]

let fmt_p stats =
  let p10, p50, p90 = Harness.p10_50_90 stats in
  Printf.sprintf "%.1f / %.1f / %.1f" p10 p50 p90

let run () =
  let requests = Harness.scaled 2000 in
  Harness.section "Figure 7: end-to-end application latency, p10 / p50 / p90 (us)";
  let rows = ref [] in
  (* client-server apps *)
  List.iter
    (fun (app, exec_us, op_gen, requests) ->
      let cells =
        List.map
          (fun (_, auth) ->
            let rng = Dsig_util.Rng.create 99L in
            let lat =
              App_harness.client_server ~auth ~exec_us ~op_gen:(op_gen rng) ~requests ()
            in
            fmt_p lat)
          (auths ())
      in
      rows := (app :: cells) :: !rows)
    (App_harness.apps ~requests);
  (* vanilla (no signatures) column shown for context *)
  (* BFT apps *)
  let ctb_cells =
    List.map
      (fun (_, auth) -> fmt_p (App_harness.ctb_latency ~auth ~broadcasts:(requests / 4) ()))
      (auths ())
  in
  rows := ("ctb" :: ctb_cells) :: !rows;
  let ubft_cells =
    List.map
      (fun (_, auth) -> fmt_p (App_harness.ubft_latency ~auth ~requests:(requests / 4) ()))
      (auths ())
  in
  rows := ("ubft (slow path)" :: ubft_cells) :: !rows;
  (* the signature-free fast path, for the paper's fast/slow contrast
     (uBFT fast path ~5 us regardless of scheme) *)
  let fast =
    fmt_p (App_harness.ubft_latency ~auth:Auth.none ~force_slow:false ~requests:(requests / 4) ())
  in
  rows := ([ "ubft (fast path)"; fast; fast; fast ]) :: !rows;
  Harness.print_table ~header:[ "app"; "sodium"; "dalek"; "dsig" ] (List.rev !rows);
  print_endline
    "(paper, Fig. 7: KV/trading auditability costs <8 us with DSig vs ~55/79 us with\n\
     Dalek/Sodium; CTB 123->34 us and uBFT 221->69 us when replacing Dalek with DSig)"
