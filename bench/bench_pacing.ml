(* Fixed vs adaptive re-announce pacing under the fault matrix: the same
   seeded drop/reorder schedule over a high-latency (800 µs one-way)
   link, once with the fixed global backoff ladder and once with
   per-destination ACK-RTT RTOs plus token-bucket pacing (DESIGN.md §9).
   The interesting columns are the re-announcement frames and the
   redundant resends — copies an already-in-flight ACK made pointless:
   the fixed ladder's 1 ms base fires inside the ~1.6 ms round trip, the
   learned RTO does not. *)

open Dsig
module Sim = Dsig_simnet.Sim
module Net = Dsig_simnet.Net
module Deploy = Dsig_deploy.Deploy
module Tel = Dsig_telemetry.Telemetry
module Snapshot = Dsig_telemetry.Registry.Snapshot

let counter snap name =
  match Snapshot.find snap name with Some (Snapshot.Counter n) -> n | _ -> 0

let gauge snap name =
  match Snapshot.find snap name with Some (Snapshot.Gauge v) -> v | _ -> Float.nan

type outcome = {
  verified : int;
  total : int;
  reannounces : int;
  redundant : int;
  giveups : int;
  snap : Snapshot.t;
}

(* One deployment on the default bundle (so the harness's telemetry
   snapshot mirrors the pacing series), with its clock temporarily
   repointed at the virtual one; counters are read as before/after
   deltas because the bundle is shared across experiments. *)
let run_mode pacing =
  let tel = Tel.default in
  let saved = tel.Tel.clock in
  let sim = Sim.create () in
  Tel.set_clock tel (fun () -> Sim.now sim);
  Fun.protect
    ~finally:(fun () -> Tel.set_clock tel saved)
    (fun () ->
      let before = Tel.snapshot tel in
      let cfg = Config.make ~batch_size:4 ~queue_threshold:8 (Config.wots ~d:4) in
      let options = pacing (Options.default |> Options.with_telemetry tel) in
      let d =
        Deploy.create sim cfg ~n:3 ~latency_us:800.0 ~reannounce_poll_us:100.0 ~options ()
      in
      Net.set_faults (Deploy.net d) ~drop:0.2 ~reorder:0.2 ~reorder_delay_us:300.0 ~seed:42L ();
      Sim.run ~until:10_000.0 sim;
      let total = Harness.scaled 60 in
      let verified = ref 0 in
      for i = 1 to total do
        let msg = Printf.sprintf "pacing-%d" i in
        let s = Deploy.sign d ~signer:0 msg in
        if Deploy.verify d ~verifier:1 ~msg s then incr verified;
        Sim.run ~until:(Sim.now sim +. 300.0) sim
      done;
      (* settle the re-announce tail on the same schedule for both modes *)
      Sim.run ~until:(Sim.now sim +. 60_000.0) sim;
      let snap = Tel.snapshot tel in
      let delta name = counter snap name - counter before name in
      {
        verified = !verified;
        total;
        reannounces = delta "dsig_signer_reannounces_total";
        redundant = delta "dsig_reannounce_redundant_total";
        giveups = delta "dsig_signer_announce_giveups_total";
        snap;
      })

let run () =
  Harness.section "Re-announce pacing: fixed ladder vs adaptive ACK-RTT RTO";
  Printf.printf "3 nodes, 800 us one-way latency, drop=0.2 reorder=0.2 (seed 42)\n";
  let fixed = run_mode (fun o -> o) in
  let adaptive = run_mode (Options.with_pacing (Options.adaptive ())) in
  let row label o =
    [
      label;
      Printf.sprintf "%d/%d" o.verified o.total;
      string_of_int o.reannounces;
      string_of_int o.redundant;
      string_of_int o.giveups;
    ]
  in
  Harness.print_table
    ~header:[ "pacing"; "verified"; "reannounce frames"; "redundant resends"; "giveups" ]
    [ row "fixed" fixed; row "adaptive" adaptive ];
  Printf.printf "adaptive learned rtt=%.0f us, rto=%.0f us (dsig_rtt_us / dsig_rto_us)\n"
    (gauge adaptive.snap "dsig_rtt_us")
    (gauge adaptive.snap "dsig_rto_us");
  if fixed.reannounces > 0 then
    Printf.printf "frames saved by adaptive pacing: %.0f%%\n"
      (100.0
      *. float_of_int (fixed.reannounces - adaptive.reannounces)
      /. float_of_int fixed.reannounces)
