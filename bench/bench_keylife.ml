(* Key lifecycle plane (DESIGN.md §14): the cost of the two operations a
   deployment performs under duress. Rotation cutover is the foreground
   stall of switching generations — confirm the journaled rotation,
   drop the dying generation's queued keys, swap in the staged batch —
   and must stay far below a single sign. Revocation propagation is the
   virtual time from an authority issuing a signed [DSIGREV1] record on
   one node of the 3-party simulated deployment until every node's
   directory enforces it. *)

open Dsig
module Tel = Dsig_telemetry.Telemetry
module Sim = Dsig_simnet.Sim
module Deploy = Dsig_deploy.Deploy
module Rotation = Dsig_keylife.Rotation

let run () =
  Harness.section "keylife: rotation cutover stall + revocation propagation";
  (* --- rotation cutover (wall clock) --- *)
  let tel = Tel.default in
  let cfg = Config.make ~batch_size:32 ~queue_threshold:64 (Config.wots ~d:4) in
  let rng = Dsig_util.Rng.create 17L in
  let sk, _ = Dsig_ed25519.Eddsa.generate rng in
  let options = Options.default |> Options.with_telemetry tel in
  let signer = Signer.create cfg ~id:0 ~eddsa:sk ~rng ~options ~verifiers:[ 1 ] () in
  let rot = Rotation.create ~clock:(fun () -> Tel.now tel) signer in
  let rounds = max 4 (Harness.scaled 200 / 20) in
  let total_us = ref 0.0 in
  for _ = 1 to rounds do
    ignore (Signer.sign signer "12345678");
    (* staging (batch generation + announce) is background-plane work;
       the foreground stall is the cutover itself — confirm the
       journaled rotation, drop the dying generation's queue, swap in
       the staged keys *)
    ignore (Rotation.start rot);
    let t0 = Tel.now tel in
    ignore (Signer.cutover signer);
    total_us := !total_us +. (Tel.now tel -. t0);
    ignore (Rotation.step rot);
    ignore (Signer.drain_outbox signer)
  done;
  let cutover_us = !total_us /. float_of_int rounds in
  let epoch = Signer.epoch signer in
  Signer.close signer;
  (* --- revocation propagation (virtual time, 3-node deployment) --- *)
  let sim = Sim.create () in
  let vtel = Tel.create ~clock:(fun () -> Sim.now sim) () in
  let d =
    Deploy.create sim cfg ~n:3 ~options:(Options.default |> Options.with_telemetry vtel) ()
  in
  Sim.run ~until:1_000.0 sim;
  for i = 1 to 4 do
    ignore (Deploy.sign d ~signer:0 (Printf.sprintf "warm-%d" i));
    Sim.run ~until:(Sim.now sim +. 150.0) sim
  done;
  let issued_at = Sim.now sim in
  ignore (Deploy.revoke ~from_batch:1_000L d ~signer:0 ());
  let enforced_everywhere () =
    List.for_all (fun n -> Pki.revocation (Deploy.pki d n) 0 <> `None) [ 0; 1; 2 ]
  in
  while (not (enforced_everywhere ())) && Sim.now sim < issued_at +. 100_000.0 do
    Sim.run ~until:(Sim.now sim +. 10.0) sim
  done;
  let propagate_us = Sim.now sim -. issued_at in
  Deploy.close d;
  Harness.print_table
    ~header:[ "operation"; "latency us"; "note" ]
    [
      [ "rotation cutover"; Harness.us2 cutover_us;
        Printf.sprintf "confirm+swap stall, %d rounds (epoch %d)" rounds epoch ];
      [ "revocation propagate"; Harness.us2 propagate_us;
        (if enforced_everywhere () then "issue -> all 3 directories barred"
         else "TIMED OUT before full enforcement") ];
    ];
  Harness.metric "rotation_cutover_us" cutover_us;
  Harness.metric "revocation_propagate_us" propagate_us
