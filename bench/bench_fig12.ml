(* Figure 12: request throughput of a synthetic signed-request server
   under a 10 Gbps NIC cap, for request sizes 32 B - 128 KiB and
   processing times of 1 and 15 us (§8.6).

   The server has 4 cores: with DSig one runs the background plane and
   three serve requests; EdDSA and the no-signature baseline use all
   four. Closed-loop clients keep the server saturated. Crossover: small
   requests are compute-bound (DSig wins on cheap verification); past
   ~8 KiB everything converges to the NIC's byte rate. *)

open Dsig_simnet
module CM = Dsig_costmodel.Costmodel

let cm () = Harness.cm ()
let cfg = Dsig.Config.default
let horizon_us () = Harness.scaled_us 150_000.0
let clients = 64

type m = Req of { t0 : float } | Rep

type scheme = { name : string; verify_us : int -> float; sig_bytes : int; cores : int }

let schemes () =
  [
    {
      name = "dsig";
      verify_us = (fun z -> CM.dsig_verify_fast_us (cm ()) cfg ~msg_bytes:z);
      sig_bytes = Dsig.Wire.size_bytes cfg;
      cores = 3;
    };
    {
      name = "eddsa";
      (* Dalek pre-hashing the message with BLAKE3, as in §8.6 *)
      verify_us =
        (fun z ->
          let m = cm () in
          m.CM.eddsa_verify_us +. (m.CM.blake3_per_byte_us *. float_of_int z));
      sig_bytes = 64;
      cores = 4;
    };
    { name = "no-sig"; verify_us = (fun _ -> 0.0); sig_bytes = 0; cores = 4 };
  ]

let throughput scheme ~req_bytes ~proc_us =
  let sim = Sim.create () in
  let net : m Net.t = Net.create sim ~nodes:(clients + 1) ~bandwidth_gbps:10.0 () in
  let server = 0 in
  let served = ref 0 in
  let cores = Array.init scheme.cores (fun _ -> Resource.create sim) in
  let pick () =
    Array.fold_left
      (fun best r -> if Resource.busy_until r < Resource.busy_until best then r else best)
      cores.(0) cores
  in
  let verify = scheme.verify_us req_bytes in
  Sim.spawn sim (fun () ->
      while true do
        let src, _, _ = Net.recv net ~node:server in
        Sim.spawn sim (fun () ->
            Resource.use (pick ()) (verify +. proc_us);
            incr served;
            Net.send net ~src:server ~dst:src ~bytes:16 Rep)
      done);
  for c = 1 to clients do
    Sim.spawn sim (fun () ->
        while true do
          Net.send net ~src:c ~dst:server ~bytes:(req_bytes + scheme.sig_bytes)
            (Req { t0 = Sim.now sim });
          ignore (Net.recv net ~node:c)
        done)
  done;
  Sim.run ~until:(horizon_us ()) sim;
  float_of_int !served /. horizon_us () *. 1e6 /. 1000.0

let sizes = [ 32; 128; 512; 2048; 8192; 32768; 131072 ]

let run () =
  Harness.section "Figure 12: signed-request server throughput @10 Gbps (kReq/s)";
  List.iter
    (fun proc_us ->
      Harness.subsection (Printf.sprintf "processing time %.0f us" proc_us);
      Harness.print_table
        ~header:("request B" :: List.map (fun s -> s.name) (schemes ()))
        (List.map
           (fun z ->
             string_of_int z
             :: List.map (fun s -> Printf.sprintf "%.1f" (throughput s ~req_bytes:z ~proc_us)) (schemes ()))
           sizes))
    [ 1.0; 15.0 ];
  print_endline
    "(paper: dsig outperforms eddsa up to 8 KiB requests, then both converge to the\n\
     no-signature baseline as the NIC becomes the bottleneck)"
