(* Transparency-log experiment: append throughput and proof latency as
   the tree grows. Real I/O (WAL appends with fsync off, like every
   other virtual-time bench) and real Merkle math — this is the one
   figure where the numbers are this host's, not the cost model's. *)

module Translog = Dsig_translog.Translog
module Checkpoint = Dsig_translog.Checkpoint
module Logtree = Dsig_merkle.Logtree
module Tel = Dsig_telemetry.Telemetry

let fresh_dir () =
  let d = Filename.temp_file "dsig-bench-translog" "" in
  Sys.remove d;
  d

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let now () = Unix.gettimeofday () *. 1e6

(* median of a sampled loop, microseconds *)
let timed ~samples f =
  let xs =
    Array.init samples (fun _ ->
        let t0 = now () in
        f ();
        now () -. t0)
  in
  Array.sort compare xs;
  xs.(samples / 2)

let run () =
  Harness.section "translog: append throughput and proof latency vs tree size";
  let sign = Dsig_hashes.Blake3.digest in
  let sizes =
    (* --ops 50 shrinks the ladder to its first rung *)
    match !Harness.ops_override with
    | Some o when o < 1000 -> [ 1_000 ]
    | _ -> [ 1_000; 10_000; 100_000 ]
  in
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () ->
      match Translog.open_ ~fsync:false ~dir () with
      | Error e -> Printf.printf "translog bench: %s\n" e
      | Ok (log, _) ->
          let op = String.make 32 'm' and signature = String.make 96 's' in
          let rows =
            List.map
              (fun target ->
                let t0 = now () in
                let start = Translog.size log in
                for i = start to target - 1 do
                  ignore (Translog.append log ~signer:(i land 7) ~op ~signature)
                done;
                let dt = now () -. t0 in
                let appended = target - start in
                let append_us = dt /. float_of_int (max 1 appended) in
                ignore (Translog.checkpoint log ~log_id:0 ~sign);
                let n = Translog.size log in
                let incl_us =
                  timed ~samples:64 (fun () ->
                      ignore (Translog.prove_inclusion log ~index:(n / 2) ()))
                in
                let cons_us =
                  timed ~samples:64 (fun () ->
                      ignore (Translog.prove_consistency log ~old_size:(n / 2) ~new_size:n))
                in
                let proof_nodes =
                  match Translog.prove_inclusion log ~index:(n / 2) () with
                  | Ok p -> List.length p
                  | Error _ -> 0
                in
                ( target,
                  [
                    string_of_int n;
                    Harness.us2 append_us;
                    Printf.sprintf "%.0f" (1e6 /. append_us);
                    Harness.us2 incl_us;
                    Harness.us2 cons_us;
                    string_of_int proof_nodes;
                  ],
                  (append_us, incl_us, cons_us) ))
              sizes
          in
          Harness.print_table
            ~header:
              [ "entries"; "append us"; "appends/s"; "incl proof us"; "cons proof us"; "path len" ]
            (List.map (fun (_, row, _) -> row) rows);
          (* pin the largest rung's numbers for the smoke snapshot *)
          (match List.rev rows with
          | (_, _, (append_us, incl_us, cons_us)) :: _ ->
              Harness.metric "translog_append_us" append_us;
              Harness.metric "translog_inclusion_proof_us" incl_us;
              Harness.metric "translog_consistency_proof_us" cons_us;
              Harness.metric "translog_entries" (float_of_int (Translog.size log))
          | [] -> ());
          let ck_us =
            (* force growth so the checkpoint is never the cached one *)
            timed ~samples:8 (fun () ->
                ignore (Translog.append log ~signer:0 ~op ~signature);
                ignore (Translog.checkpoint log ~log_id:0 ~sign))
          in
          Harness.metric "translog_checkpoint_us" ck_us;
          Printf.printf "checkpoint (sync + anchor + rotate + sign): %.1f us\n" ck_us;
          Translog.close log)
