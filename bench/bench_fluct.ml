(* uBFT latency fluctuation (§6): "The slow path is triggered even
   without Byzantine behavior (e.g., due to process slowness), leading
   to latency fluctuations between its two modes of operation."

   One replica is an occasional laggard: its fast-path acknowledgment
   sometimes arrives after the leader's timeout, pushing that request
   through the signed slow path. With EdDSA the two modes are ~5 µs vs
   ~160 µs; DSig compresses the slow mode to ~70 µs, flattening the
   fluctuation — the reason §6 gives for replacing uBFT's signatures. *)

open Dsig_simnet
open Dsig_bft
module CM = Dsig_costmodel.Costmodel

let run_one ~auth ~name =
  let requests = Harness.scaled 600 in
  let sim = Sim.create () in
  let lat = Stats.create () in
  let starts = Hashtbl.create 64 in
  let slow = ref 0 and fast = ref 0 in
  let behavior i =
    if i = 2 then Ctb.Laggard { probability = 0.25; delay_us = 60.0 } else Ctb.Honest
  in
  let cluster =
    Ubft.create ~sim ~auth ~n:3 ~f:1 ~behavior ~slow_overhead_us:50.0 ~fast_timeout_us:20.0
      ~view_timeout_us:100_000.0 (* no view changes here: the leader is honest *)
      ~on_commit:(fun ~replica:_ ~rid:_ ~payload:_ -> ())
      ~on_reply:(fun ~rid ~path ->
        (match path with Ubft.Slow -> incr slow | Ubft.Fast -> incr fast);
        Stats.add lat (Sim.now sim -. Hashtbl.find starts rid))
      ()
  in
  Sim.spawn sim (fun () ->
      for i = 0 to requests - 1 do
        Hashtbl.replace starts i (Sim.now sim);
        Ubft.request cluster ~rid:i "8-bytes!";
        Sim.sleep 1000.0
      done);
  Sim.run ~until:1e9 sim;
  let p10, p50, p90 = Harness.p10_50_90 lat in
  [
    name;
    string_of_int !fast;
    string_of_int !slow;
    Harness.us p10;
    Harness.us p50;
    Harness.us p90;
    Harness.us (Stats.percentile lat 99.0);
  ]

let run () =
  Harness.section "uBFT latency fluctuation under benign slowness (§6)";
  let rows =
    [
      run_one ~auth:(Auth.eddsa_modeled ~name:"dalek" (Harness.cm ())) ~name:"eddsa (dalek)";
      run_one ~auth:(Auth.dsig_modeled (Harness.cm ()) Dsig.Config.default) ~name:"dsig";
    ]
  in
  Harness.print_table
    ~header:[ "scheme"; "fast"; "slow"; "p10 us"; "p50 us"; "p90 us"; "p99 us" ]
    rows;
  print_endline
    "(one replica lags 25% of the time: the p90/p99 spikes are slow-path episodes;\n\
     DSig shrinks the spike by ~2.5x, taming uBFT's bimodal latency)"
