(* Benchmark harness entry point: regenerates every table and figure of
   the paper's evaluation (see DESIGN.md §3 for the experiment index).

     dune exec bench/main.exe            run everything
     dune exec bench/main.exe -- --list  list experiment ids
     dune exec bench/main.exe -- --only fig10 [--only tab1 ...]
     dune exec bench/main.exe -- --host  print host configuration (Table 3 stand-in)
     dune exec bench/main.exe -- --csv results
                                         also write every table as CSV under results/
     dune exec bench/main.exe -- --measured --only fig8
                                         drive the modeled figures with a
                                         host-measured cost model instead of
                                         the paper calibration
     dune exec bench/main.exe -- --ops 50
                                         cap every figure's workload at 50
                                         operations (shrinking time-horizon
                                         figures proportionally) — the smoke
                                         mode `dune build @smoke` uses
*)

let experiments : (string * string * (unit -> unit)) list ref = ref []
let register id descr f = experiments := (id, descr, f) :: !experiments

let () =
  register "micro" "microbenchmarks of the real crypto substrates" Bench_micro.run;
  register "tab1" "Table 1: EdDSA vs DSig latency/throughput/size" Bench_tab1.run;
  register "tab2" "Table 2: analytical HBSS comparison" Bench_tab2.run;
  register "fig1" "Figure 1: application latency breakdown" Bench_fig1.run;
  register "fig6" "Figure 6: HBSS configurations x hash functions" Bench_fig6.run;
  register "fig7" "Figure 7: end-to-end app latency, p10/p50/p90" Bench_fig7.run;
  register "fig8" "Figure 8: sign-tx-verify latency CDF + breakdown" Bench_fig8.run;
  register "fig9" "Figure 9: message-size sweep" Bench_fig9.run;
  register "fig10" "Figure 10: latency-throughput" Bench_fig10.run;
  register "fig11" "Figure 11: one-to-many / many-to-one @10Gbps" Bench_fig11.run;
  register "fig12" "Figure 12: request size x processing time @10Gbps" Bench_fig12.run;
  register "fig13" "Figure 13: EdDSA batch-size sweep" Bench_fig13.run;
  register "pareto" "parameter-space exploration and Pareto frontier (§5)" Bench_pareto.run;
  register "fluct" "uBFT fast/slow latency fluctuation under benign slowness (§6)" Bench_fluct.run;
  register "ablation" "ablations: batching, chain cache, bw reduction, EdDSA cache" Bench_ablation.run;
  register "pacing" "fixed vs adaptive re-announce pacing under faults" Bench_pacing.run;
  register "store" "durable key-state store signing overhead (group commit)" Bench_store.run;
  register "translog" "transparency log: append throughput + proof latency vs tree size"
    Bench_translog.run;
  register "scale" "multicore scale-out: sigs/sec & verifies/sec vs domain count"
    Bench_scale.run;
  register "keylife" "key lifecycle: rotation cutover stall + revocation propagation"
    Bench_keylife.run;
  register "fleet" "fleet-scale load control: goodput & shed rate at 1x/2x/4x overload"
    Bench_fleet.run;
  (* declare the pacing and store series on the default bundle up front
     so every experiment's telemetry snapshot carries the keys scrapers
     key on, zero-valued until the owning experiment populates them *)
  let tel = Dsig_telemetry.Telemetry.default in
  ignore (Dsig_telemetry.Telemetry.counter tel "dsig_reannounce_redundant_total");
  ignore (Dsig_telemetry.Telemetry.gauge tel "dsig_rtt_us");
  ignore (Dsig_telemetry.Telemetry.gauge tel "dsig_rto_us");
  List.iter
    (fun n -> ignore (Dsig_telemetry.Telemetry.counter tel n))
    [
      "dsig_store_appends_total"; "dsig_store_fsyncs_total"; "dsig_store_recoveries_total";
      "dsig_store_burned_keys_total"; "dsig_store_torn_truncations_total";
      "dsig_store_snapshots_total";
    ];
  ignore (Dsig_telemetry.Telemetry.gauge tel "dsig_store_wal_segments");
  ignore (Dsig_telemetry.Telemetry.histogram tel "dsig_store_fsync_us");
  ignore (Dsig_telemetry.Telemetry.histogram tel "dsig_store_group_commit_batch");
  (* transparency-plane series, same pre-declaration discipline *)
  List.iter
    (fun n -> ignore (Dsig_telemetry.Telemetry.counter tel n))
    [
      "dsig_translog_appends_total"; "dsig_translog_checkpoints_total";
      "dsig_translog_recoveries_total"; "dsig_translog_inclusion_proofs_total";
      "dsig_translog_consistency_proofs_total"; "dsig_translog_split_views_total";
    ];
  ignore (Dsig_telemetry.Telemetry.gauge tel "dsig_translog_entries");
  ignore (Dsig_telemetry.Telemetry.gauge tel "dsig_translog_segments");
  ignore (Dsig_telemetry.Telemetry.histogram tel "dsig_translog_append_us");
  ignore (Dsig_telemetry.Telemetry.histogram tel "dsig_translog_proof_us");
  (* load-control plane (lib/loadctl) — the fleet bench runs on its own
     virtual-clocked bundle, so declare the series scrapers key on here *)
  List.iter
    (fun n -> ignore (Dsig_telemetry.Telemetry.counter tel n))
    [
      "dsig_loadctl_admitted_total"; "dsig_loadctl_shed_total";
      "dsig_loadctl_shed_verify_total"; "dsig_loadctl_shed_repair_total";
    ];
  ignore (Dsig_telemetry.Telemetry.gauge tel "dsig_loadctl_rate_per_sec");
  ignore (Dsig_telemetry.Telemetry.gauge tel "dsig_loadctl_pressure");
  ignore (Dsig_telemetry.Telemetry.gauge tel "dsig_loadctl_congested");
  ignore (Dsig_telemetry.Telemetry.histogram tel "dsig_loadctl_sojourn_us")

let print_host () =
  Harness.section "Host configuration (stand-in for Table 3; see DESIGN.md)";
  Printf.printf "os: %s / ocaml %s / word size %d\n" Sys.os_type Sys.ocaml_version Sys.word_size;
  Printf.printf "network & NICs: simulated (lib/simnet) — 100 Gbps default, 10 Gbps caps per\n";
  Printf.printf "experiment; 1 us base latency + 0.6 ns/B, per-NIC FIFO serialization\n"

let () =
  let args = Array.to_list Sys.argv in
  let all = List.rev !experiments in
  let only =
    let rec collect = function
      | "--only" :: id :: rest -> id :: collect rest
      | _ :: rest -> collect rest
      | [] -> []
    in
    collect args
  in
  if List.mem "--measured" args then Harness.use_measured ();
  (let rec find_ops = function
     | "--ops" :: n :: _ -> (
         match int_of_string_opt n with
         | Some n when n > 0 -> Harness.ops_override := Some n
         | _ ->
             Printf.eprintf "--ops expects a positive integer\n";
             exit 1)
     | _ :: rest -> find_ops rest
     | [] -> ()
   in
   find_ops args);
  (let rec find_csv = function
     | "--csv" :: dir :: _ -> Harness.set_csv_dir dir
     | _ :: rest -> find_csv rest
     | [] -> ()
   in
   find_csv args);
  let snapshot_path =
    let rec find = function
      | "--snapshot" :: path :: _ -> Some path
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  if List.mem "--list" args then
    List.iter (fun (id, descr, _) -> Printf.printf "%-10s %s\n" id descr) all
  else begin
    if List.mem "--host" args || only = [] then print_host ();
    let selected =
      if only = [] then all else List.filter (fun (id, _, _) -> List.mem id only) all
    in
    if selected = [] && only <> [] then begin
      Printf.eprintf "unknown experiment id(s); try --list\n";
      exit 1
    end;
    List.iter (fun (_, _, f) -> f ()) selected;
    (match snapshot_path with Some path -> Harness.write_bench_snapshot path | None -> ());
    print_newline ()
  end
