(* Microbenchmarks of the real crypto substrates (Bechamel, monotonic
   clock). These are this host's numbers for the pure-OCaml
   implementations — the "measured" column of Table 1 builds on them. *)

open Bechamel
module H = Dsig_hashes
module E = Dsig_ed25519.Eddsa

(* A self-contained foreground signer on its own telemetry bundle; the
   background plane is refilled inline every 32 signatures so the queue
   never empties during the timing loop. *)
let sign_test ~name ~lifecycle () =
  Test.make ~name
    (Staged.stage
       (let cfg =
          Dsig.Config.make ~batch_size:64 ~queue_threshold:128 (Dsig.Config.wots ~d:4)
        in
        let tel = Dsig_telemetry.Telemetry.create () in
        if lifecycle then Dsig_telemetry.Lifecycle.enable tel.Dsig_telemetry.Telemetry.lifecycle;
        let rng = Dsig_util.Rng.create 7L in
        let sk, _ = E.generate rng in
        let signer =
          Dsig.Signer.create cfg ~id:0 ~eddsa:sk ~rng
            ~options:Dsig.Options.(default |> with_telemetry tel)
            ~verifiers:[ 1 ] ()
        in
        Dsig.Signer.background_fill signer;
        let c = ref 0 in
        fun () ->
          incr c;
          if !c land 31 = 0 then begin
            Dsig.Signer.background_fill signer;
            ignore (Dsig.Signer.drain_outbox signer)
          end;
          Dsig.Signer.sign signer "12345678"))

let tests () =
  let rng = Dsig_util.Rng.create 5L in
  let b32 = Dsig_util.Rng.bytes rng 32 in
  let b64 = Dsig_util.Rng.bytes rng 64 in
  let b18 = Dsig_util.Rng.bytes rng 18 in
  let sk, pk = E.generate rng in
  let msg = "12345678" in
  let signature = E.sign sk msg in
  let p4 = Dsig_hbss.Params.Wots.make ~d:4 () in
  let kp = Dsig_hbss.Wots.generate p4 ~seed:(Dsig_util.Rng.bytes rng 32) in
  let nonce = Dsig_util.Rng.bytes rng 16 in
  let wsig = Dsig_hbss.Wots.sign ~allow_reuse:true kp ~nonce msg in
  let pseed = Dsig_hbss.Wots.public_seed kp in
  let pdig = Dsig_hbss.Wots.public_key_digest kp in
  [
    Test.make ~name:"sha256/64B" (Staged.stage (fun () -> H.Sha256.digest b64));
    Test.make ~name:"sha512/64B" (Staged.stage (fun () -> H.Sha512.digest b64));
    Test.make ~name:"blake3/64B" (Staged.stage (fun () -> H.Blake3.digest b64));
    Test.make ~name:"haraka256" (Staged.stage (fun () -> H.Haraka.haraka256 b32));
    Test.make ~name:"haraka512" (Staged.stage (fun () -> H.Haraka.haraka512 b64));
    Test.make ~name:"chain-hash-18B" (Staged.stage (fun () -> H.Hash.digest H.Hash.Haraka ~length:18 b18));
    Test.make ~name:"eddsa-sign" (Staged.stage (fun () -> E.sign sk msg));
    Test.make ~name:"eddsa-verify" (Staged.stage (fun () -> E.verify pk msg signature));
    Test.make ~name:"wots4-sign(cached)"
      (Staged.stage (fun () -> Dsig_hbss.Wots.sign ~allow_reuse:true kp ~nonce msg));
    Test.make ~name:"wots4-verify"
      (Staged.stage (fun () ->
           Dsig_hbss.Wots.verify p4 ~public_seed:pseed ~pk_digest:pdig wsig msg));
    Test.make ~name:"wots4-keygen"
      (Staged.stage
         (let c = ref 0 in
          fun () ->
            incr c;
            Dsig_hbss.Wots.generate p4
              ~seed:(H.Blake3.digest (string_of_int !c))));
    (* telemetry overhead: a hot-path Histogram.add against the
       allocating Stats.add it would replace. The recorder is recycled
       periodically so the growing sample array never dominates RSS
       during the timing loop. *)
    Test.make ~name:"telemetry-histogram-add"
      (Staged.stage
         (let h = Dsig_telemetry.Metric.Histogram.create () in
          let c = ref 0 in
          fun () ->
            incr c;
            Dsig_telemetry.Metric.Histogram.add h (float_of_int (!c land 0xFFF))));
    Test.make ~name:"stats-add"
      (Staged.stage
         (let st = ref (Dsig_simnet.Stats.create ()) in
          let c = ref 0 in
          fun () ->
            incr c;
            if !c land 0xFFFFF = 0 then st := Dsig_simnet.Stats.create ();
            Dsig_simnet.Stats.add !st (float_of_int (!c land 0xFFF))));
    (* lifecycle tracing: the full foreground sign path on a private
       bundle, with the aggregator disabled (one mutable load on the hot
       path — must stay within noise of the seed) and enabled (pays the
       trace-id derivation plus a mutexed table insert) *)
    sign_test ~name:"dsig-sign/lifecycle-off" ~lifecycle:false ();
    sign_test ~name:"dsig-sign/lifecycle-on" ~lifecycle:true ();
    Test.make ~name:"trace-ctx-roundtrip"
      (Staged.stage
         (let module T = Dsig_telemetry.Trace_ctx in
          let ctx = T.make ~signer:3 ~batch_id:41L ~key_index:7 ~origin:3 ~birth_us:1234.5 in
          fun () -> T.decode (T.encode ctx) 0));
  ]

let run () =
  Harness.section "Microbenchmarks: real crypto on this host (pure OCaml, no SIMD)";
  let results = Harness.run_bechamel (tests ()) in
  (* pin the headline sign/verify costs for the --snapshot gate *)
  List.iter
    (fun (name, ns) ->
      let record key = Harness.metric key (ns /. 1000.0) in
      if name = "eddsa-sign" then record "micro_eddsa_sign_us"
      else if name = "eddsa-verify" then record "micro_eddsa_verify_us"
      else if name = "dsig-sign/lifecycle-off" then record "micro_dsig_sign_us"
      else if name = "wots4-verify" then record "micro_wots_verify_us")
    results;
  let rows =
    List.map (fun (name, ns) -> [ name; Printf.sprintf "%.2f" (ns /. 1000.0) ]) results
    |> List.sort compare
  in
  Harness.print_table ~header:[ "operation"; "us/op" ] rows;
  print_endline
    "(the paper's AVX2/AES-NI numbers are 10-100x lower; figure harnesses use the\n\
     paper-calibrated cost model so shapes do not depend on this host)"
