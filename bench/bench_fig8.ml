(* Figure 8: CDF of sign-transmit-verify latency for 8 B messages under
   Sodium, Dalek, and DSig with correct and incorrect hints, plus the
   median latency breakdown.

   The pipeline is modeled from the calibrated per-op costs plus the
   transmission formula, with light multiplicative jitter standing in
   for the (flat-until-p99.9) measurement noise of the real testbed. *)

module CM = Dsig_costmodel.Costmodel
open Dsig_simnet

type scheme = { name : string; sign : float; tx : float; verify : float }

let schemes () =
  let cfg = Dsig.Config.default in
  let msg_bytes = 8 in
  let dsig_bytes = msg_bytes + Dsig.Wire.size_bytes cfg in
  let eddsa_bytes = msg_bytes + 64 in
  let mk name cm sign verify bytes = { name; sign; tx = Harness.tx_us bytes; verify } |> fun s -> ignore cm; s in
  [
    mk "sodium" () (CM.eddsa_sign_total_us (Harness.cm_sodium ()) ~msg_bytes)
      (CM.eddsa_verify_total_us (Harness.cm_sodium ()) ~msg_bytes)
      eddsa_bytes;
    mk "dalek" () (CM.eddsa_sign_total_us (Harness.cm ()) ~msg_bytes)
      (CM.eddsa_verify_total_us (Harness.cm ()) ~msg_bytes)
      eddsa_bytes;
    mk "dsig" ()
      (CM.dsig_sign_us (Harness.cm ()) cfg ~msg_bytes)
      (CM.dsig_verify_fast_us (Harness.cm ()) cfg ~msg_bytes)
      dsig_bytes;
    mk "dsig/wrong-hint" ()
      (CM.dsig_sign_us (Harness.cm ()) cfg ~msg_bytes)
      (CM.dsig_verify_slow_us (Harness.cm ()) cfg ~msg_bytes)
      dsig_bytes;
  ]

let run () =
  let samples = Harness.scaled 10_000 in
  Harness.section "Figure 8: sign-transmit-verify latency, 8 B messages (10,000 samples)";
  let rng = Dsig_util.Rng.create 88L in
  let results =
    List.map
      (fun s ->
        let st = Stats.create () in
        for _ = 1 to samples do
          Stats.add st (Harness.jitter rng s.sign +. s.tx +. Harness.jitter rng s.verify)
        done;
        (s, st))
      (schemes ())
  in
  Harness.subsection "median breakdown (paper: sodium 20.6/0.0/58.3, dalek 18.9/0.1/35.6, dsig 0.7/1.0/5.1 of extra tx)";
  Harness.print_table
    ~header:[ "scheme"; "sign us"; "tx us"; "verify us"; "total p50" ]
    (List.map
       (fun (s, st) ->
         [ s.name; Harness.us2 s.sign; Harness.us2 s.tx; Harness.us2 s.verify;
           Harness.us2 (Stats.percentile st 50.0) ])
       results);
  Harness.subsection "latency CDF (us at cumulative fraction)";
  let fractions = [ 0.10; 0.25; 0.50; 0.75; 0.90; 0.99; 0.999 ] in
  Harness.print_table
    ~header:("fraction" :: List.map (fun (s, _) -> s.name) results)
    (List.map
       (fun frac ->
         Printf.sprintf "%.3f" frac
         :: List.map
              (fun (_, st) -> Harness.us2 (Stats.percentile st (100.0 *. frac)))
              results)
       fractions);
  let total name = List.find (fun (s, _) -> s.name = name) results |> fun (_, st) -> Stats.percentile st 50.0 in
  Printf.printf "\ndsig vs dalek total: %.1fx faster (paper: 8.2x)\n" (total "dalek" /. total "dsig");
  Printf.printf "dsig wrong-hint vs dalek: %.0f%% lower (paper: 24%%)\n"
    (100.0 *. (1.0 -. (total "dsig/wrong-hint" /. total "dalek")))
