(* Multicore scale-out: signatures/sec and verifications/sec vs worker
   domain count (1/2/4/8) through the Dsig_util.Domain_pool plane.

   Method — modeled scaling from per-shard busy times. The work is
   partitioned exactly as Options.with_parallel partitions it
   (contiguous key-index / input-index ranges, one range per shard);
   each shard's job then runs to completion on its own and its busy
   time is measured on the monotonic clock. The modeled D-domain
   completion time is the slowest shard's busy time (ideal overlap, the
   same assumption the paper's per-core throughput columns make), so

     modeled speedup(D) = sum(shard busy) / max(shard busy)

   which reaches D only if the sharding is balanced and shards share no
   state — a verifier that serialized its shards on a global lock, or a
   skewed partition, shows up directly as a lower number. Independently
   of the model, the same workload is ALSO pushed through the real
   multi-domain path (Signer.sign_many / Verifier.verify_many with a
   live pool) and cross-checked against the single-domain verdicts, so
   the contended code path is exercised even when the host has a single
   core and wall-clock speedup is physically impossible. *)

open Dsig

let domain_counts = [ 1; 2; 4; 8 ]

let cfg = Config.make ~batch_size:128 ~queue_threshold:128 (Config.wots ~d:4)

let mono_us () = Dsig_telemetry.Tracer.mono_clock_us ()

(* Busy time of [f ()] on the monotonic clock, in microseconds. *)
let busy f =
  let t0 = mono_us () in
  f ();
  mono_us () -. t0

(* Contiguous shard ranges, mirroring Domain_pool.parallel_map. *)
let shard_ranges n shards =
  List.init shards (fun s -> (s * n / shards, ((s + 1) * n / shards) - 1))

let make_system ~pool () =
  let rng = Dsig_util.Rng.create 42L in
  let sk, pk = Dsig_ed25519.Eddsa.generate rng in
  let pki = Pki.create () in
  Pki.bind pki ~id:0 ~epoch:0 pk;
  let options =
    match pool with
    | None -> Options.default
    | Some p -> Options.default |> Options.with_parallel p
  in
  let signer = Signer.create cfg ~id:0 ~eddsa:sk ~rng ~options ~verifiers:[ 1 ] () in
  let verifier = Verifier.create cfg ~id:1 ~pki ~options () in
  (signer, verifier)

let run () =
  Harness.section "Scale: signatures & verifications vs domain count";
  (* one batch of prepared keys exactly: no synchronous refill can land
     inside a shard's busy window and skew the balance *)
  let n = Harness.scaled 128 in
  Printf.printf "workload: %d ops per point, W-OTS+ d=4, batch 128 (modeled overlap;\n" n;
  Printf.printf "see bench_scale.ml for the method)\n";
  let msgs = Array.init n (fun i -> Printf.sprintf "scale-op-%06d" i) in
  let rows = ref [] in
  let speedups = ref [] in
  List.iter
    (fun d ->
      (* --- sign plane: per-shard busy = building bodies + encodings
         for a contiguous run of prepared keys --- *)
      let signer, verifier = make_system ~pool:None () in
      Signer.background_fill signer;
      let sign_busy =
        List.map
          (fun (lo, hi) ->
            let chunk = Array.sub msgs lo (hi - lo + 1) in
            busy (fun () -> ignore (Signer.sign_many signer chunk)))
          (shard_ranges n d)
      in
      let sign_sum = List.fold_left ( +. ) 0.0 sign_busy in
      let sign_max = List.fold_left Float.max 0.0 sign_busy in
      (* --- verify plane: signatures + delivered announcement, then
         per-shard busy = classifying a contiguous input range --- *)
      let signer2, _ = make_system ~pool:None () in
      Signer.background_fill signer2;
      let wires = Array.map (fun m -> Signer.sign signer2 m) msgs in
      List.iter (fun (_, ann) -> ignore (Verifier.deliver verifier ann)) (Signer.drain_outbox signer2);
      let pairs = Array.init n (fun i -> (msgs.(i), wires.(i))) in
      let verify_busy =
        List.map
          (fun (lo, hi) ->
            busy (fun () ->
                for i = lo to hi do
                  let msg, wire = pairs.(i) in
                  if not (Verifier.verify verifier ~msg wire) then
                    failwith "bench scale: verification failed"
                done))
          (shard_ranges n d)
      in
      let verify_sum = List.fold_left ( +. ) 0.0 verify_busy in
      let verify_max = List.fold_left Float.max 0.0 verify_busy in
      (* --- cross-check the real multi-domain path with a live pool --- *)
      (if d > 1 then begin
         let pool = Dsig_util.Domain_pool.create ~domains:d () in
         Fun.protect
           ~finally:(fun () -> Dsig_util.Domain_pool.shutdown pool)
           (fun () ->
             let psigner, pverifier = make_system ~pool:(Some pool) () in
             Signer.background_fill psigner;
             let pwires = Signer.sign_many psigner msgs in
             List.iter
               (fun (_, ann) -> ignore (Verifier.deliver pverifier ann))
               (Signer.drain_outbox psigner);
             let ok =
               Verifier.verify_many pverifier (Array.init n (fun i -> (msgs.(i), pwires.(i))))
             in
             if not (Array.for_all Fun.id ok) then
               failwith "bench scale: pooled verification disagreed"
           )
       end);
      let fn = float_of_int n in
      let sign_tput = fn /. sign_max *. 1e6 in
      let verify_tput = fn /. verify_max *. 1e6 in
      let sign_speedup = sign_sum /. sign_max in
      let verify_speedup = verify_sum /. verify_max in
      speedups := (d, sign_speedup, verify_speedup, sign_tput, verify_tput) :: !speedups;
      rows :=
        [
          string_of_int d;
          Harness.us sign_sum;
          Harness.us sign_max;
          Harness.kops sign_tput;
          Printf.sprintf "%.2f" sign_speedup;
          Harness.us verify_sum;
          Harness.us verify_max;
          Harness.kops verify_tput;
          Printf.sprintf "%.2f" verify_speedup;
        ]
        :: !rows)
    domain_counts;
  Harness.print_table
    ~header:
      [
        "domains"; "sign sum us"; "sign max us"; "sign kops/s"; "sign x";
        "verify sum us"; "verify max us"; "verify kops/s"; "verify x";
      ]
    (List.rev !rows);
  (* ASCII plot: modeled verifications/sec vs domains *)
  Harness.subsection "verifications/sec vs domains (modeled overlap)";
  let sp = List.rev !speedups in
  let vmax = List.fold_left (fun a (_, _, _, _, v) -> Float.max a v) 0.0 sp in
  List.iter
    (fun (d, _, _, _, v) ->
      let bar = int_of_float (40.0 *. v /. vmax) in
      Printf.printf "%d domains | %-40s %s ops/s\n" d (String.make (Stdlib.max bar 1) '#')
        (Harness.kops v ^ "k"))
    sp;
  List.iter
    (fun (d, ss, vs, st, vt) ->
      Harness.metric (Printf.sprintf "scale_sign_speedup_%ddom" d) ss;
      Harness.metric (Printf.sprintf "scale_verify_speedup_%ddom" d) vs;
      Harness.metric (Printf.sprintf "scale_sign_ops_per_sec_%ddom" d) st;
      Harness.metric (Printf.sprintf "scale_verify_ops_per_sec_%ddom" d) vt)
    sp
