(* Figure 11: one-to-many and many-to-one scalability with NICs capped
   at 10 Gbps (§8.5).

   One-to-many: one signer multicasts each signature to V verifiers;
   DSig saturates its sender NIC (1,584 B signatures + 33 B background
   data), while 64 B EdDSA signatures keep scaling with verifier count.

   Many-to-one: S signers send distinct signatures to one verifier whose
   foreground core is the bottleneck. *)

open Dsig_simnet
module CM = Dsig_costmodel.Costmodel

let horizon_us () = Harness.scaled_us 150_000.0

(* Per-message wire overhead (headers, DMA descriptors, inline padding):
   NICs do not reach line rate at ~1.6 KiB messages. Calibrated so the
   DSig signer's goodput saturates at the paper's ~7.5 Gbps (577 kSig/s
   around 5 verifiers). *)
let frame_overhead_bytes = 700

type m = Sig of int (* verifier counts only *)

let cm () = Harness.cm ()
let cfg = Dsig.Config.default

type scheme = {
  name : string;
  sign_us : float;
  verify_us : float;
  sig_bytes : int; (* includes per-verifier background share *)
  signer_overhead_us : float; (* per-signature background work on the signer *)
  verifier_cores : int;
}

let dsig_scheme () =
  let cm = cm () in
  {
    name = "dsig";
    sign_us = CM.dsig_sign_us cm cfg ~msg_bytes:8;
    verify_us = CM.dsig_verify_fast_us cm cfg ~msg_bytes:8;
    sig_bytes = 8 + Dsig.Wire.size_bytes cfg + 33 + frame_overhead_bytes;
    signer_overhead_us = 0.0 (* background keygen runs on the second core *);
    verifier_cores = 1 (* the other core runs the verifier's background plane *);
  }

let dalek_scheme () =
  let cm = cm () in
  {
    name = "dalek";
    sign_us = cm.CM.eddsa_sign_us;
    verify_us = cm.CM.eddsa_verify_us;
    sig_bytes = 8 + 64 + frame_overhead_bytes;
    signer_overhead_us = 0.0;
    verifier_cores = 2;
  }

(* the DSig signer's second core generates keys at ~7.4 us/key: it caps
   the signature production rate *)
let dsig_keygen () = CM.dsig_keygen_per_key_us (cm ()) cfg

let one_to_many scheme ~verifiers =
  let sim = Sim.create () in
  let net : m Net.t = Net.create sim ~nodes:(1 + verifiers) ~bandwidth_gbps:10.0 () in
  let verified = ref 0 in
  (* signer: fg core signs; bg core (dsig) produces keys *)
  let fg = Resource.create ~name:"signer.fg" sim in
  let keys = Channel.create sim in
  if scheme.name = "dsig" then
    Sim.spawn sim (fun () ->
        let bg = Resource.create ~name:"signer.bg" sim in
        while true do
          Resource.use bg (128.0 *. dsig_keygen ());
          for _ = 1 to 128 do
            Channel.send keys ()
          done
        done);
  (* the NIC drains asynchronously (DMA); bounded credits provide
     backpressure so the signer stalls only when the NIC is saturated *)
  let credits = Channel.create sim in
  for _ = 1 to 64 do
    Channel.send credits ()
  done;
  Sim.spawn sim (fun () ->
      while true do
        if scheme.name = "dsig" then Channel.recv keys;
        Resource.use fg (scheme.sign_us +. scheme.signer_overhead_us);
        for v = 1 to verifiers do
          Channel.recv credits;
          Sim.spawn sim (fun () ->
              Net.send net ~src:0 ~dst:v ~bytes:scheme.sig_bytes (Sig v);
              Channel.send credits ())
        done
      done);
  for v = 1 to verifiers do
    let cores = Array.init scheme.verifier_cores (fun _ -> Resource.create sim) in
    let pick () =
      Array.fold_left
        (fun best r -> if Resource.busy_until r < Resource.busy_until best then r else best)
        cores.(0) cores
    in
    Sim.spawn sim (fun () ->
        while true do
          let _ = Net.recv net ~node:v in
          Sim.spawn sim (fun () ->
              Resource.use (pick ()) scheme.verify_us;
              incr verified)
        done)
  done;
  Sim.run ~until:(horizon_us ()) sim;
  float_of_int !verified /. horizon_us () *. 1e6 /. 1000.0

let many_to_one scheme ~signers =
  let sim = Sim.create () in
  let net : m Net.t = Net.create sim ~nodes:(signers + 1) ~bandwidth_gbps:10.0 () in
  let verified = ref 0 in
  for s = 1 to signers do
    let fg = Resource.create sim in
    let keys = Channel.create sim in
    if scheme.name = "dsig" then
      Sim.spawn sim (fun () ->
          let bg = Resource.create sim in
          while true do
            Resource.use bg (128.0 *. dsig_keygen ());
            for _ = 1 to 128 do
              Channel.send keys ()
            done
          done);
    let credits = Channel.create sim in
    for _ = 1 to 64 do
      Channel.send credits ()
    done;
    Sim.spawn sim (fun () ->
        while true do
          if scheme.name = "dsig" then Channel.recv keys;
          Resource.use fg scheme.sign_us;
          Channel.recv credits;
          Sim.spawn sim (fun () ->
              Net.send net ~src:s ~dst:0 ~bytes:scheme.sig_bytes (Sig s);
              Channel.send credits ())
        done)
  done;
  let cores = Array.init scheme.verifier_cores (fun _ -> Resource.create sim) in
  let pick () =
    Array.fold_left
      (fun best r -> if Resource.busy_until r < Resource.busy_until best then r else best)
      cores.(0) cores
  in
  Sim.spawn sim (fun () ->
      while true do
        let _ = Net.recv net ~node:0 in
        Sim.spawn sim (fun () ->
            Resource.use (pick ()) scheme.verify_us;
            incr verified)
      done);
  Sim.run ~until:(horizon_us ()) sim;
  float_of_int !verified /. horizon_us () *. 1e6 /. 1000.0

let run () =
  Harness.section "Figure 11: scalability at 10 Gbps NICs (aggregate verified kSig/s)";
  Harness.subsection "one-to-many (one signer, V verifiers)";
  let counts = [ 1; 2; 3; 5; 7; 9; 11; 13 ] in
  Harness.print_table
    ~header:("verifiers" :: List.map string_of_int counts)
    [
      "dsig" :: List.map (fun v -> Printf.sprintf "%.0f" (one_to_many (dsig_scheme ()) ~verifiers:v)) counts;
      "dalek" :: List.map (fun v -> Printf.sprintf "%.0f" (one_to_many (dalek_scheme ()) ~verifiers:v)) counts;
    ];
  print_endline "(paper: dsig saturates its 10 Gbps link near 5 verifiers at ~577 k/s;\n\
                 dalek scales linearly and overtakes at 11 verifiers with ~603 k/s)";
  Harness.subsection "many-to-one (S signers, one verifier)";
  let counts = [ 1; 2; 3; 4; 6 ] in
  Harness.print_table
    ~header:("signers" :: List.map string_of_int counts)
    [
      "dsig" :: List.map (fun s -> Printf.sprintf "%.0f" (many_to_one (dsig_scheme ()) ~signers:s)) counts;
      "dalek" :: List.map (fun s -> Printf.sprintf "%.0f" (many_to_one (dalek_scheme ()) ~signers:s)) counts;
    ];
  print_endline "(paper: dsig tops out at ~190 k/s with 2 signers — the verifier's\n\
                 single foreground core; dalek at ~53 k/s)"
