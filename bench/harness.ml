(* Shared helpers for the benchmark harnesses: table printing, bechamel
   wrappers, the modeled network-transmission formula, and compute-time
   jitter for percentile spreads. *)

open Bechamel
open Toolkit
module CM = Dsig_costmodel.Costmodel

(* The cost model driving every modeled figure: the paper calibration by
   default, or a host-measured one under --measured. Read at run() time,
   never at module initialization. *)
let selected_cm : CM.t option ref = ref None

let cm () = Option.value ~default:CM.paper_dalek !selected_cm

(* Sodium differs from Dalek only in EdDSA costs; under --measured there
   is a single (our) EdDSA, so both baselines collapse to it. *)
let cm_sodium () =
  match !selected_cm with Some m -> m | None -> CM.paper_sodium

(* Optional global shrink of per-figure workload sizes (--ops N): every
   harness loop sized through [scaled] runs at most N operations, and
   time-horizon figures shrink proportionally through [scaled_us]
   (treating N as a fraction of a nominal 1000-op figure). Lets the
   @smoke alias regenerate every figure in seconds. *)
let ops_override : int option ref = ref None

let scaled n = match !ops_override with Some o -> Stdlib.min o n | None -> n

let scaled_us h =
  match !ops_override with
  | Some o -> h *. Float.min 1.0 (float_of_int o /. 1000.0)
  | None -> h

let use_measured () =
  let m = CM.measure () in
  selected_cm := Some m;
  Printf.printf
    "using host-measured cost model: hash %.3f us, blake3 %.3f us, eddsa %.1f/%.1f us,\n     sign fixed %.2f us, keygen fixed %.2f us\n"
    m.CM.hash_us m.CM.blake3_us m.CM.eddsa_sign_us m.CM.eddsa_verify_us m.CM.sign_fixed_us
    m.CM.keygen_fixed_us

(* Optional CSV mirroring (--csv DIR): every printed table also lands in
   DIR/<section-slug>[-<n>].csv so figures can be replotted offline. *)
let csv_dir : string option ref = ref None
let current_slug = ref "untitled"
let slug_counter : (string, int) Hashtbl.t = Hashtbl.create 16

let set_csv_dir dir =
  (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755 with Sys_error _ -> ());
  csv_dir := Some dir

let slugify title =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | '0' .. '9' -> c | 'A' .. 'Z' -> Char.lowercase_ascii c | _ -> '-')
    (String.concat "-" (String.split_on_char ' ' (String.lowercase_ascii title)))
  |> fun s -> if String.length s > 40 then String.sub s 0 40 else s

let section title =
  current_slug := slugify title;
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title =
  Printf.printf "\n-- %s --\n" title

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

(* Telemetry snapshot mirroring: next to every CSV, drop the default
   registry's snapshot as <base>-telemetry.json so the per-phase
   counters and histograms the harness populated while producing that
   table (batch generation, sign/verify paths, ...) can be inspected
   offline alongside the results. *)
let write_telemetry_snapshot dir base =
  let tel = Dsig_telemetry.Telemetry.default in
  let js =
    Dsig_telemetry.Export.json ~tracer:tel.Dsig_telemetry.Telemetry.tracer
      ~lifecycle:tel.Dsig_telemetry.Telemetry.lifecycle
      (Dsig_telemetry.Telemetry.snapshot tel)
  in
  let oc = open_out (Filename.concat dir (base ^ "-telemetry.json")) in
  output_string oc (js ^ "\n");
  close_out oc

(* Key-metric recorder (--snapshot PATH): experiments call [metric] for
   the handful of numbers worth pinning run-over-run (sign/verify
   microcosts, store overheads, translog append/proof latencies); the
   snapshot writer dumps them as one flat JSON object so a smoke gate —
   or a human diffing two checkouts — can key on stable names instead of
   scraping tables. *)
let metrics : (string * float) list ref = ref []

let metric name value = metrics := (name, value) :: !metrics

(* First line of a command's stdout, or [default] if the command fails
   or prints nothing — used for best-effort provenance (git rev, arch)
   in the snapshot meta block. *)
let command_line ~default cmd =
  try
    let ic = Unix.open_process_in cmd in
    let line = try input_line ic with End_of_file -> default in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when String.trim line <> "" -> String.trim line
    | _ -> default
  with Unix.Unix_error _ | Sys_error _ -> default

let iso8601 t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let write_bench_snapshot path =
  let oc = open_out path in
  output_string oc "{\n  \"schema\": \"dsig-bench-smoke-v2\",\n";
  (* provenance: enough to tell whether a committed baseline and a fresh
     snapshot are comparable (same host class, same domain budget) and
     which checkout produced each *)
  output_string oc "  \"meta\": {\n";
  Printf.fprintf oc "    \"written_at\": %S,\n" (iso8601 (Unix.time ()));
  Printf.fprintf oc "    \"git_rev\": %S,\n"
    (command_line ~default:"unknown" "git rev-parse --short HEAD 2>/dev/null");
  Printf.fprintf oc "    \"arch\": %S,\n" (command_line ~default:"unknown" "uname -m");
  Printf.fprintf oc "    \"domains\": %d,\n" (Domain.recommended_domain_count ());
  Printf.fprintf oc "    \"ocaml\": %S\n" Sys.ocaml_version;
  output_string oc "  },\n  \"metrics\": {\n";
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) (List.rev !metrics) in
  List.iteri
    (fun i (name, v) ->
      Printf.fprintf oc "    %S: %s%s\n" name
        (if Float.is_finite v then Printf.sprintf "%.6f" v else "null")
        (if i = List.length sorted - 1 then "" else ","))
    sorted;
  output_string oc "  }\n}\n";
  close_out oc;
  Printf.printf "wrote %d bench metrics to %s\n" (List.length sorted) path

let write_csv ~header rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      let n = Option.value ~default:0 (Hashtbl.find_opt slug_counter !current_slug) in
      Hashtbl.replace slug_counter !current_slug (n + 1);
      let base =
        if n = 0 then !current_slug else Printf.sprintf "%s-%d" !current_slug n
      in
      let oc = open_out (Filename.concat dir (base ^ ".csv")) in
      List.iter
        (fun row -> output_string oc (String.concat "," (List.map csv_escape row) ^ "\n"))
        (header :: rows);
      close_out oc;
      write_telemetry_snapshot dir base

(* column-aligned table printing *)
let print_table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> Stdlib.max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let print_row row =
    List.iteri
      (fun c cell ->
        let w = List.nth widths c in
        if c = 0 then Printf.printf "%-*s" w cell else Printf.printf "  %*s" w cell)
      row;
    print_newline ()
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows;
  write_csv ~header rows

let us v = Printf.sprintf "%.1f" v
let us2 v = Printf.sprintf "%.2f" v
let kops v = Printf.sprintf "%.0f" (v /. 1000.0)

(* --- bechamel --- *)

(* Run a list of Test.t and return (full test name, ns per run). *)
let run_bechamel ?(quota = 0.25) tests =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~stabilize:false ~quota:(Time.second quota) () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  List.concat_map
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.fold
        (fun name ols acc ->
          match Analyze.OLS.estimates ols with
          | Some [ ns ] -> (name, ns) :: acc
          | Some _ | None -> acc)
        results [])
    tests

(* --- transmission model (§8.2; see DESIGN.md) --- *)

(* Incremental transmission time of a payload: ~1 µs base plus ~0.6 ns/B
   of per-byte software/PCIe cost. Reproduces Table 1's measured 1.1 µs
   (EdDSA, 72 B) and 2.0 µs (DSig, 1,592 B) transmissions. *)
let tx_us ?(base = 1.05) ?(per_byte = 0.0006) bytes = base +. (per_byte *. float_of_int bytes)

(* --- compute jitter --- *)

(* Multiplicative noise with a light exponential tail: real systems show
   flat CDFs with a small knee near p99 (Figure 8). *)
let jitter rng v =
  let u = 0.98 +. Dsig_util.Rng.float rng 0.04 in
  (v *. u) +. Dsig_util.Rng.exponential rng ~mean:(0.01 *. v)

(* percentile triple used throughout §8 *)
let p10_50_90 stats =
  ( Dsig_simnet.Stats.percentile stats 10.0,
    Dsig_simnet.Stats.percentile stats 50.0,
    Dsig_simnet.Stats.percentile stats 90.0 )
