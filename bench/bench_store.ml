(* Signing overhead of the durable key-state store (DESIGN.md §10): the
   same foreground signing loop run without a store and with a Keystate
   journal at group-commit sizes 1 / 8 / 64. Group commit amortizes the
   fsync — size 1 pays one per reservation, size 64 one per 64 — and the
   commit size bounds what a crash burns, so the table is the
   durability/latency trade-off the store exposes through
   [Options.store ~group_commit]. *)

open Dsig
module Tel = Dsig_telemetry.Telemetry
module Snapshot = Dsig_telemetry.Registry.Snapshot

let counter snap name =
  match Snapshot.find snap name with Some (Snapshot.Counter n) -> n | _ -> 0

(* mkdtemp without unix: claim a unique temp name, swap file for dir *)
let fresh_dir () =
  let f = Filename.temp_file "dsig-bench-store" "" in
  Sys.remove f;
  Sys.mkdir f 0o700;
  f

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

type outcome = { us_per_op : float; appends : int; fsyncs : int }

let run_mode ~ops mk_options =
  let tel = Tel.default in
  let before = Tel.snapshot tel in
  let cfg = Config.make ~batch_size:64 ~queue_threshold:128 (Config.wots ~d:4) in
  let rng = Dsig_util.Rng.create 11L in
  let sk, _ = Dsig_ed25519.Eddsa.generate rng in
  let options = mk_options (Options.default |> Options.with_telemetry tel) in
  let signer = Signer.create cfg ~id:0 ~eddsa:sk ~rng ~options ~verifiers:[ 1 ] () in
  Signer.background_fill signer;
  let t0 = Tel.now tel in
  for i = 1 to ops do
    if i land 31 = 0 then begin
      Signer.background_fill signer;
      ignore (Signer.drain_outbox signer)
    end;
    ignore (Signer.sign signer "12345678")
  done;
  let dt = Tel.now tel -. t0 in
  Signer.close signer;
  let snap = Tel.snapshot tel in
  let delta name = counter snap name - counter before name in
  {
    us_per_op = dt /. float_of_int ops;
    appends = delta "dsig_store_appends_total";
    fsyncs = delta "dsig_store_fsyncs_total";
  }

let run () =
  Harness.section "store: durable key-state signing overhead (WAL group commit)";
  let ops = Harness.scaled 2000 in
  Printf.printf "foreground signer, wots d=4 batch=64, %d signatures per mode\n" ops;
  let memory = run_mode ~ops (fun o -> o) in
  let stored g dir = run_mode ~ops (Options.with_store (Options.store ~group_commit:g dir)) in
  let modes =
    List.map
      (fun g ->
        let dir = fresh_dir () in
        let o = Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> stored g dir) in
        (Printf.sprintf "store g=%d" g, o))
      [ 1; 8; 64 ]
  in
  let row (label, o) =
    [
      label;
      Harness.us2 o.us_per_op;
      (if o.us_per_op <= memory.us_per_op || memory.us_per_op <= 0.0 then "-"
       else Printf.sprintf "+%.0f%%" (100.0 *. (o.us_per_op /. memory.us_per_op -. 1.0)));
      string_of_int o.appends;
      string_of_int o.fsyncs;
    ]
  in
  Harness.print_table
    ~header:[ "mode"; "sign us/op"; "overhead"; "wal appends"; "fsyncs" ]
    (row ("in-memory", memory) :: List.map row modes);
  (* pin the default-cadence numbers for the --snapshot gate *)
  match List.assoc_opt "store g=8" modes with
  | Some o ->
      Harness.metric "store_sign_us" o.us_per_op;
      Harness.metric "store_wal_appends" (float_of_int o.appends)
  | None -> ()
