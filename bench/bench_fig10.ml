(* Figure 10: latency-throughput curves for Sodium, Dalek, and DSig,
   with constant or exponentially distributed signing intervals.

   Two cores per side, as in §8.4: DSig dedicates one core per side to
   its background plane (key generation at ~7.4 us/key bounds its
   throughput at ~135 kSig/s); the EdDSA baselines use both cores as a
   worker pool (sign- resp. verify-bound). *)

open Dsig_simnet
module CM = Dsig_costmodel.Costmodel

type dist = Constant | Exponential

type point = { rate : float; achieved : float; p50 : float }

(* read per run so a --ops override (set after module init) shrinks the
   simulated horizon proportionally *)
let horizon_us () = Harness.scaled_us 400_000.0
let warmup_us () = Harness.scaled_us 80_000.0

type fig_msg = Sig of { t0 : float } | Ann

(* generic two-node pipeline; [signer_step]/[verifier_step] charge the
   right cores *)
let run_pipeline ~dist ~rate_per_s ~sign_us ~verify_us ~sig_bytes ~dsig_planes ~cm () =
  let sim = Sim.create () in
  let rng = Dsig_util.Rng.create 1010L in
  let net : fig_msg Net.t = Net.create sim ~nodes:4 () in
  (* nodes: 0 signer fg, 1 verifier fg, 2 signer bg, 3 verifier bg *)
  let lat = Stats.create () in
  let completed = ref 0 in
  let cfg = Dsig.Config.default in
  let interarrival () =
    let mean = 1e6 /. rate_per_s in
    match dist with Constant -> mean | Exponential -> Dsig_util.Rng.exponential rng ~mean
  in
  (match dsig_planes with
  | true ->
      (* DSig: fg core each side; bg core each side *)
      let s_fg = Resource.create ~name:"s.fg" sim in
      let v_fg = Resource.create ~name:"v.fg" sim in
      let s_bg = Resource.create ~name:"s.bg" sim in
      let v_bg = Resource.create ~name:"v.bg" sim in
      let keys = Channel.create sim in
      let s = cfg.Dsig.Config.queue_threshold in
      let batch = cfg.Dsig.Config.batch_size in
      let keygen = CM.dsig_keygen_per_key_us cm cfg in
      let vbg = CM.dsig_verifier_bg_per_key_us cm cfg in
      (* signer background plane *)
      Sim.spawn sim (fun () ->
          while true do
            if Channel.length keys < s then begin
              Resource.use s_bg (float_of_int batch *. keygen);
              for _ = 1 to batch do
                Channel.send keys ()
              done;
              Net.send_async net ~src:2 ~dst:3 ~bytes:(batch * 33) Ann
            end
            else Sim.sleep 5.0
          done);
      (* verifier background plane *)
      Sim.spawn sim (fun () ->
          while true do
            match Net.recv net ~node:3 with
            | _, _, Ann -> Resource.use v_bg (float_of_int batch *. vbg)
            | _ -> ()
          done);
      (* arrivals *)
      Sim.spawn sim (fun () ->
          while Sim.now sim < horizon_us () do
            Sim.sleep (interarrival ());
            let t0 = Sim.now sim in
            Sim.spawn sim (fun () ->
                Channel.recv keys;
                Resource.use s_fg sign_us;
                Net.send net ~src:0 ~dst:1 ~bytes:sig_bytes (Sig { t0 }))
          done);
      (* verifier foreground *)
      Sim.spawn sim (fun () ->
          while true do
            match Net.recv net ~node:1 with
            | _, _, Sig { t0 } ->
                Resource.use v_fg verify_us;
                if t0 > warmup_us () then begin
                  Stats.add lat (Sim.now sim -. t0);
                  incr completed
                end
            | _ -> ()
          done)
  | false ->
      (* EdDSA: two-core worker pools on each side *)
      let s_cores = [| Resource.create sim; Resource.create sim |] in
      let v_cores = [| Resource.create sim; Resource.create sim |] in
      let pick cores =
        if Resource.busy_until cores.(0) <= Resource.busy_until cores.(1) then cores.(0)
        else cores.(1)
      in
      Sim.spawn sim (fun () ->
          while Sim.now sim < horizon_us () do
            Sim.sleep (interarrival ());
            let t0 = Sim.now sim in
            Sim.spawn sim (fun () ->
                Resource.use (pick s_cores) sign_us;
                Net.send net ~src:0 ~dst:1 ~bytes:sig_bytes (Sig { t0 }))
          done);
      Sim.spawn sim (fun () ->
          while true do
            match Net.recv net ~node:1 with
            | _, _, Sig { t0 } ->
                Sim.spawn sim (fun () ->
                    Resource.use (pick v_cores) verify_us;
                    if t0 > warmup_us () then begin
                      Stats.add lat (Sim.now sim -. t0);
                      incr completed
                    end)
            | _ -> ()
          done));
  Sim.run ~until:(horizon_us () +. 50_000.0) sim;
  let window = horizon_us () -. warmup_us () in
  {
    rate = rate_per_s /. 1000.0;
    achieved = float_of_int !completed /. window *. 1e6 /. 1000.0;
    p50 = (if Stats.count lat = 0 then nan else Stats.percentile lat 50.0);
  }

let scheme_points ~dist name =
  let cm = Harness.cm () in
  let cfg = Dsig.Config.default in
  let sign, verify, bytes, planes, max_rate =
    match name with
    | "sodium" ->
        (let sod = Harness.cm_sodium () in
         (sod.CM.eddsa_sign_us, sod.CM.eddsa_verify_us, 72, false, 2e6 /. sod.CM.eddsa_verify_us))
    | "dalek" -> (cm.CM.eddsa_sign_us, cm.CM.eddsa_verify_us, 72, false, 2e6 /. cm.CM.eddsa_verify_us)
    | _ ->
        ( CM.dsig_sign_us cm cfg ~msg_bytes:8,
          CM.dsig_verify_fast_us cm cfg ~msg_bytes:8,
          8 + Dsig.Wire.size_bytes cfg,
          true,
          1e6 /. CM.dsig_keygen_per_key_us cm cfg )
  in
  List.map
    (fun frac ->
      run_pipeline ~dist ~rate_per_s:(frac *. max_rate) ~sign_us:sign ~verify_us:verify
        ~sig_bytes:bytes ~dsig_planes:planes ~cm ())
    [ 0.3; 0.6; 0.8; 0.9; 0.97; 1.05 ]

let run () =
  Harness.section "Figure 10: latency-throughput (two cores per side)";
  List.iter
    (fun dist ->
      Harness.subsection
        (match dist with Constant -> "constant signing interval" | Exponential -> "exponential signing interval");
      let series = List.map (fun n -> (n, scheme_points ~dist n)) [ "sodium"; "dalek"; "dsig" ] in
      Harness.print_table
        ~header:[ "scheme"; "offered k/s"; "achieved k/s"; "p50 latency us" ]
        (List.concat_map
           (fun (name, pts) ->
             List.map
               (fun p ->
                 [ name; Printf.sprintf "%.0f" p.rate; Printf.sprintf "%.0f" p.achieved;
                   (if Float.is_nan p.p50 then "-" else Harness.us p.p50) ])
               pts)
           series))
    [ Constant; Exponential ];
  print_endline
    "(paper: sodium flat ~80 us to 34 k/s; dalek ~56 us to 56 k/s; dsig ~7.8 us to\n\
     137 k/s, bottlenecked by the signer's background plane at 7.4 us/key)"
