(* Perf-trajectory gate (`dune build @trajectory`): compare a fresh
   bench snapshot against the committed baseline with per-metric
   tolerance bands. Usage:

     trajectory.exe BASELINE.json FRESH.json [TOLERANCE]

   Exits 1 if any metric regressed beyond its band or disappeared;
   improvements and brand-new metrics report but pass (a new metric
   just means the committed baseline wants regenerating). *)

module Trajectory = Dsig_timeseries.Trajectory

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let load_snapshot label path =
  let body = try read_file path with Sys_error e ->
    Printf.eprintf "trajectory: cannot read %s snapshot: %s\n" label e;
    exit 2
  in
  match Trajectory.parse_snapshot body with
  | Ok metrics -> (metrics, Trajectory.meta_of_snapshot body)
  | Error e ->
      Printf.eprintf "trajectory: %s snapshot %s: %s\n" label path e;
      exit 2

let meta_line label meta =
  let get k = Option.value ~default:"?" (List.assoc_opt k meta) in
  Printf.printf "%-8s rev=%s arch=%s domains=%s written_at=%s\n" label (get "git_rev")
    (get "arch") (get "domains") (get "written_at")

(* Per-metric bands (shared with smoke_check — keep the lists in
   sync): fsync-bound store latency swings >50% run-over-run on shared
   hardware, and the sub-millisecond translog proof/checkpoint figures
   quantize coarsely at --ops 50, so both get much wider bands than
   the global default. The 4-domain speedup floor in smoke_check still
   catches a real parallel-plane collapse. *)
let tolerances =
  [
    ("store_sign_us", 3.0);
    ("translog_checkpoint_us", 1.5);
    ("translog_consistency_proof_us", 1.5);
    ("translog_inclusion_proof_us", 1.5);
    (* sub-ms wall-clock stall, coarsely quantized at --ops 50 *)
    ("rotation_cutover_us", 3.0);
  ]

let () =
  if Array.length Sys.argv < 3 then begin
    Printf.eprintf "usage: trajectory.exe BASELINE.json FRESH.json [TOLERANCE]\n";
    exit 2
  end;
  let baseline, base_meta = load_snapshot "baseline" Sys.argv.(1) in
  let fresh, fresh_meta = load_snapshot "fresh" Sys.argv.(2) in
  let tolerance =
    if Array.length Sys.argv > 3 then
      match float_of_string_opt Sys.argv.(3) with
      | Some t when t > 0.0 -> t
      | _ ->
          Printf.eprintf "trajectory: bad tolerance %S\n" Sys.argv.(3);
          exit 2
    else Trajectory.default_tolerance
  in
  meta_line "baseline" base_meta;
  meta_line "fresh" fresh_meta;
  let entries = Trajectory.compare_metrics ~tolerance ~tolerances ~baseline ~fresh () in
  print_string (Trajectory.render entries);
  match Trajectory.failures entries with
  | [] ->
      Printf.printf "trajectory: %d metrics within band (tolerance %.0f%%)\n"
        (List.length entries) (tolerance *. 100.0)
  | bad ->
      List.iter
        (fun e ->
          Printf.eprintf "trajectory: %s %s%s\n" e.Trajectory.e_name
            (Trajectory.verdict_name e.Trajectory.e_verdict)
            (match e.Trajectory.e_delta_pct with
            | Some d -> Printf.sprintf " (%+.1f%%, band %.0f%%)" d (e.Trajectory.e_tolerance *. 100.0)
            | None -> ""))
        bad;
      exit 1
