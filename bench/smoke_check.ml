(* Smoke gate for the bench harness (`dune build @smoke`): after an
   --ops-shrunk run with --csv DIR, every figure's *-telemetry.json
   snapshot must carry the lifecycle summary keys the scrape endpoint
   and offline tooling consume, and the emitted BENCH_smoke.json must
   carry every plane's pinned metric plus its provenance meta block.
   With a second argument — a committed baseline snapshot — the fresh
   metrics are additionally held to the perf-trajectory tolerance
   bands (Dsig_timeseries.Trajectory), so a regression beyond the band
   fails @smoke, not just a missing key. Exits non-zero listing
   offending files/metrics. *)

module Trajectory = Dsig_timeseries.Trajectory

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let required =
  [
    "\"lifecycle\""; "\"planes\""; "\"started\""; "\"completed\""; "\"full\"";
    (* adaptive-pacing series, declared at harness startup so they ride
       in every snapshot even before the pacing experiment runs *)
    "\"dsig_rtt_us\""; "\"dsig_rto_us\""; "\"dsig_reannounce_redundant_total\"";
    (* durability-plane series (lib/store), declared the same way *)
    "\"dsig_store_fsync_us\""; "\"dsig_store_appends_total\"";
    "\"dsig_store_burned_keys_total\""; "\"dsig_store_recoveries_total\"";
    (* transparency-plane series (lib/apps/translog) *)
    "\"dsig_translog_appends_total\""; "\"dsig_translog_checkpoints_total\"";
    "\"dsig_translog_split_views_total\""; "\"dsig_translog_append_us\"";
    "\"dsig_translog_proof_us\"";
  ]

(* the pinned key metrics every BENCH_smoke.json must carry — one per
   plane the smoke run exercises *)
let required_bench_metrics =
  [
    "\"micro_eddsa_sign_us\""; "\"micro_eddsa_verify_us\""; "\"micro_dsig_sign_us\"";
    "\"store_sign_us\""; "\"translog_append_us\""; "\"translog_inclusion_proof_us\"";
    "\"translog_consistency_proof_us\""; "\"translog_checkpoint_us\"";
    (* parallel plane (bench scale) *)
    "\"scale_sign_speedup_4dom\""; "\"scale_verify_speedup_4dom\"";
    "\"scale_verify_ops_per_sec_1dom\""; "\"scale_verify_ops_per_sec_4dom\"";
    (* key lifecycle plane (bench keylife) *)
    "\"rotation_cutover_us\""; "\"revocation_propagate_us\"";
    (* load-control plane (bench fleet) *)
    "\"fleet_goodput_ops_per_sec_1x\""; "\"fleet_goodput_ops_per_sec_2x\"";
    "\"fleet_goodput_ops_per_sec_4x\""; "\"fleet_shed_ratio_1x\""; "\"fleet_shed_ratio_2x\"";
    "\"fleet_shed_ratio_4x\""; "\"fleet_goodput_retention_4x\"";
  ]

(* Value gates: metrics that must not only be present but clear a floor.
   The 4-domain verify speedup is the parallel plane's regression canary
   — balanced shard ownership and lock-free fold-back give ~4x modeled
   overlap; a verifier serializing its shards on a global lock collapses
   it towards 1x. *)
let required_floors =
  [
    ("scale_verify_speedup_4dom", 2.5);
    (* load-control canary: at 4x overload admission control must keep
       at least half of the 1x goodput — an unbounded queue collapses
       this toward zero as every sojourn blows past its deadline *)
    ("fleet_goodput_retention_4x", 0.5);
  ]

(* Value gates in the other direction: metrics that must stay at or
   under a ceiling. A fleet provisioned with 2x headroom must not shed
   at its nominal operating point — any shedding at 1x means the
   admission controller is tuned into false positives. *)
let required_ceilings = [ ("fleet_shed_ratio_1x", 0.0) ]

(* Extract "name": 1.234 from the flat snapshot JSON. *)
let metric_value s name =
  let needle = "\"" ^ name ^ "\":" in
  let nh = String.length s and nn = String.length needle in
  let rec find i = if i + nn > nh then None else if String.sub s i nn = needle then Some (i + nn) else find (i + 1) in
  match find 0 with
  | None -> None
  | Some start ->
      let stop = ref start in
      while
        !stop < nh && (match s.[!stop] with '0' .. '9' | '.' | '-' | '+' | 'e' | ' ' -> true | _ -> false)
      do
        incr stop
      done;
      float_of_string_opt (String.trim (String.sub s start (!stop - start)))

(* the provenance block the snapshot writer stamps (schema v2) — a
   baseline without it cannot be judged comparable to a fresh run *)
let required_meta_keys =
  [ "\"meta\""; "\"written_at\""; "\"git_rev\""; "\"arch\""; "\"domains\""; "\"ocaml\"" ]

let check_bench_snapshot ?baseline dir =
  let path = Filename.concat dir "BENCH_smoke.json" in
  if not (Sys.file_exists path) then begin
    Printf.eprintf "smoke_check: %s missing\n" path;
    exit 1
  end;
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let missing_meta = List.filter (fun k -> not (contains s k)) required_meta_keys in
  if missing_meta <> [] then begin
    List.iter (fun k -> Printf.eprintf "smoke_check: %s lacks meta key %s\n" path k) missing_meta;
    exit 1
  end;
  let missing = List.filter (fun k -> not (contains s k)) required_bench_metrics in
  if missing <> [] then begin
    List.iter (fun k -> Printf.eprintf "smoke_check: %s lacks metric %s\n" path k) missing;
    exit 1
  end;
  List.iter
    (fun (name, floor) ->
      match metric_value s name with
      | None ->
          Printf.eprintf "smoke_check: %s has no parsable value for %s\n" path name;
          exit 1
      | Some v when v < floor ->
          Printf.eprintf "smoke_check: %s: %s = %.2f below floor %.2f\n" path name v floor;
          exit 1
      | Some v -> Printf.printf "smoke_check: %s = %.2f (floor %.2f)\n" name v floor)
    required_floors;
  List.iter
    (fun (name, ceiling) ->
      match metric_value s name with
      | None ->
          Printf.eprintf "smoke_check: %s has no parsable value for %s\n" path name;
          exit 1
      | Some v when v > ceiling ->
          Printf.eprintf "smoke_check: %s: %s = %.2f above ceiling %.2f\n" path name v ceiling;
          exit 1
      | Some v -> Printf.printf "smoke_check: %s = %.2f (ceiling %.2f)\n" name v ceiling)
    required_ceilings;
  Printf.printf "smoke_check: %s carries all %d pinned metrics\n" path
    (List.length required_bench_metrics);
  (* perf trajectory: hold the fresh metrics to the committed
     baseline's tolerance bands *)
  match baseline with
  | None -> ()
  | Some base_path ->
      let read p =
        let ic = open_in_bin p in
        let b = really_input_string ic (in_channel_length ic) in
        close_in ic;
        b
      in
      let base_body =
        try read base_path
        with Sys_error e ->
          Printf.eprintf "smoke_check: cannot read baseline: %s\n" e;
          exit 1
      in
      (match (Trajectory.parse_snapshot base_body, Trajectory.parse_snapshot s) with
      | Error e, _ ->
          Printf.eprintf "smoke_check: baseline %s: %s\n" base_path e;
          exit 1
      | _, Error e ->
          Printf.eprintf "smoke_check: fresh %s: %s\n" path e;
          exit 1
      | Ok baseline, Ok fresh -> (
          (* keep in sync with the band list in trajectory.ml:
             fsync-bound and coarsely-quantized figures get wider
             bands than the 50% default *)
          let tolerances =
            [
              ("store_sign_us", 3.0);
              ("translog_checkpoint_us", 1.5);
              ("translog_consistency_proof_us", 1.5);
              ("translog_inclusion_proof_us", 1.5);
              ("rotation_cutover_us", 3.0);
            ]
          in
          let entries = Trajectory.compare_metrics ~tolerances ~baseline ~fresh () in
          match Trajectory.failures entries with
          | [] ->
              Printf.printf "smoke_check: trajectory vs %s: %d metrics within band\n" base_path
                (List.length entries)
          | bad ->
              print_string (Trajectory.render entries);
              List.iter
                (fun e ->
                  Printf.eprintf "smoke_check: trajectory: %s %s\n" e.Trajectory.e_name
                    (Trajectory.verdict_name e.Trajectory.e_verdict))
                bad;
              exit 1))

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "smoke-results" in
  let baseline = if Array.length Sys.argv > 2 then Some Sys.argv.(2) else None in
  let entries =
    try Sys.readdir dir
    with Sys_error e ->
      Printf.eprintf "smoke_check: %s\n" e;
      exit 1
  in
  let snaps =
    Array.to_list entries |> List.filter (fun f -> Filename.check_suffix f "-telemetry.json")
  in
  if snaps = [] then begin
    Printf.eprintf "smoke_check: no *-telemetry.json under %s\n" dir;
    exit 1
  end;
  let bad =
    List.filter
      (fun f ->
        let ic = open_in (Filename.concat dir f) in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        not (List.for_all (contains s) required))
      snaps
  in
  if bad = [] then
    Printf.printf "smoke_check: %d telemetry snapshots carry lifecycle keys\n" (List.length snaps)
  else begin
    List.iter (fun f -> Printf.eprintf "smoke_check: %s/%s lacks lifecycle keys\n" dir f) bad;
    exit 1
  end;
  check_bench_snapshot ?baseline dir
